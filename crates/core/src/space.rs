//! Spaces: the processes of the network objects world.
//!
//! A [`Space`] owns an object table, a set of transports, an RPC server
//! (when listening), cached RPC clients to peer spaces, and the collector
//! machinery (sequence numbers, cleanup demon, ping/lease demons). The
//! original system had exactly one of these per address space; tests and
//! simulations here create many in one process.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::time::{Duration, Instant};

use std::collections::BTreeMap;

use crossbeam::channel::Sender;
use netobj_rpc::{
    Admission, Backoff, BreakerState, CallClient, CallReply, CircuitBreaker, Dispatch, DispatchCx,
    Dispatcher, FailureClass, RpcError, RpcServer, ServerConfig,
};
use netobj_transport::{Bytes, Endpoint, TransportRegistry};
use netobj_wire::{
    ObjIx, SpaceId, SpanKind, SpanOutcome, SpanRecord, TraceEvent, TraceKind, TypeList, WireRep,
};
use parking_lot::{Mutex, RwLock};

use crate::dgc::{self, GcJob};
use crate::error::{to_remote_error, Error, NetResult};
use crate::handle::{Handle, HandleKind, PinKind, SurrogateCore, TransientPin};
use crate::marshal::UnmarshalCx;
use crate::metrics::{ClientQuotaGauges, Gauges, Histogram, Metrics, GC_KINDS};
use crate::obj::NetObject;
use crate::options::Options;
use crate::span::{self, IdAlloc, SpanRing, TraceScope, DEFAULT_SPAN_CAPACITY};
use crate::stats::{Stats, StatsSnapshot};
use crate::table::ObjectTable;
use crate::trace::{TraceRing, DEFAULT_TRACE_CAPACITY};

pub(crate) struct SpaceInner {
    pub(crate) id: SpaceId,
    pub(crate) options: Options,
    pub(crate) registry: TransportRegistry,
    /// Read-mostly connection cache: every call looks its client up under
    /// the read lock; the write lock is taken only to (re)connect or
    /// invalidate.
    pub(crate) clients: RwLock<HashMap<Endpoint, Arc<CallClient>>>,
    /// Read-mostly, like `clients`: one breaker per endpoint, installed
    /// once and then only read on the call path.
    pub(crate) breakers: RwLock<HashMap<Endpoint, Arc<CircuitBreaker>>>,
    pub(crate) dead_owners: Mutex<HashSet<SpaceId>>,
    /// Mirror of `dead_owners.len()`: the per-call liveness check loads
    /// this atomic and skips the lock entirely while no owner has died
    /// (the overwhelmingly common case).
    pub(crate) dead_owner_count: AtomicUsize,
    pub(crate) retry_seed: AtomicU64,
    pub(crate) server: Mutex<Option<RpcServer>>,
    pub(crate) local_ep: Mutex<Option<Endpoint>>,
    pub(crate) table: ObjectTable,
    pub(crate) stats: Stats,
    pub(crate) gc_seqno: AtomicU64,
    pub(crate) gc_tx: Mutex<Option<Sender<GcJob>>>,
    pub(crate) demon: Mutex<Option<std::thread::JoinHandle<()>>>,
    pub(crate) pinger: Mutex<Option<std::thread::JoinHandle<()>>>,
    pub(crate) stopped: AtomicBool,
    pub(crate) trace: Arc<TraceRing>,
    pub(crate) spans: Arc<SpanRing>,
    pub(crate) ids: IdAlloc,
    /// Per-label application-call latency histograms. Read-mostly: after
    /// warm-up every call label exists, so the hot path takes the read
    /// lock only; the write lock is needed just to install a new label.
    pub(crate) app_hist: RwLock<BTreeMap<String, Arc<Histogram>>>,
    pub(crate) gc_hist: [Histogram; 4],
    pub(crate) pending_clean_retries: AtomicU64,
}

/// A participating process: the unit of ownership in Network Objects.
///
/// Cheap to clone; all clones share the same underlying space. See the
/// crate docs for the lifecycle of objects and references.
#[derive(Clone)]
pub struct Space {
    pub(crate) inner: Arc<SpaceInner>,
}

/// Builder for [`Space`].
pub struct SpaceBuilder {
    registry: TransportRegistry,
    listen: Option<Endpoint>,
    options: Options,
}

impl Default for SpaceBuilder {
    fn default() -> Self {
        SpaceBuilder {
            registry: TransportRegistry::new(),
            listen: None,
            options: Options::default(),
        }
    }
}

impl SpaceBuilder {
    /// Uses an existing transport registry (share one per test/simulation).
    pub fn transports(mut self, registry: TransportRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Registers one transport.
    pub fn transport(self, t: Arc<dyn netobj_transport::Transport>) -> Self {
        self.registry.register(t);
        self
    }

    /// Makes the space listen at `ep` (required to own callable objects).
    pub fn listen(mut self, ep: Endpoint) -> Self {
        self.listen = Some(ep);
        self
    }

    /// Overrides the default options.
    pub fn options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Creates the space, starting its server (if listening) and demons.
    pub fn build(self) -> NetResult<Space> {
        let trace = TraceRing::new(self.options.clock.clone(), DEFAULT_TRACE_CAPACITY);
        let spans = SpanRing::new(self.options.clock.clone(), DEFAULT_SPAN_CAPACITY);
        let id = SpaceId::fresh();
        let inner = Arc::new(SpaceInner {
            id,
            options: self.options,
            registry: self.registry,
            clients: RwLock::new(HashMap::new()),
            breakers: RwLock::new(HashMap::new()),
            dead_owners: Mutex::new(HashSet::new()),
            dead_owner_count: AtomicUsize::new(0),
            retry_seed: AtomicU64::new(0),
            server: Mutex::new(None),
            local_ep: Mutex::new(None),
            table: ObjectTable::new(),
            stats: Stats::default(),
            gc_seqno: AtomicU64::new(1),
            gc_tx: Mutex::new(None),
            demon: Mutex::new(None),
            pinger: Mutex::new(None),
            stopped: AtomicBool::new(false),
            trace,
            spans,
            ids: IdAlloc::new(id),
            app_hist: RwLock::new(BTreeMap::new()),
            gc_hist: Default::default(),
            pending_clean_retries: AtomicU64::new(0),
        });
        let space = Space { inner };

        if let Some(ep) = self.listen {
            let listener = space.inner.registry.listen(&ep)?;
            let local = listener.local_endpoint();
            let dispatcher: Arc<dyn Dispatcher> =
                Arc::new(SpaceDispatcher(Arc::downgrade(&space.inner)));
            let server = RpcServer::start_with_config(
                listener,
                dispatcher,
                ServerConfig {
                    workers: space.inner.options.workers,
                    queue_limit: space.inner.options.server_queue_limit,
                    budget: space.inner.options.budget.clone(),
                    clock: space.inner.options.clock.clone(),
                },
            );
            *space.inner.local_ep.lock() = Some(local);
            *space.inner.server.lock() = Some(server);
            // Every listening space answers introspection queries at the
            // reserved index: read-only metrics, spans and trace tail.
            crate::introspect::install(&space)?;
        }

        dgc::start_demons(&space);
        Ok(space)
    }
}

impl Space {
    /// Starts building a space.
    pub fn builder() -> SpaceBuilder {
        SpaceBuilder::default()
    }

    /// This space's globally unique identifier.
    pub fn id(&self) -> SpaceId {
        self.inner.id
    }

    /// The endpoint this space listens on, if any.
    pub fn endpoint(&self) -> Option<Endpoint> {
        self.inner.local_ep.lock().clone()
    }

    /// The space's options.
    pub fn options(&self) -> &Options {
        &self.inner.options
    }

    /// A snapshot of the space's activity counters.
    ///
    /// The shed counters live in the RPC server (calls refused there never
    /// reach the space's dispatcher); the snapshot folds them in so one
    /// read sees all admission decisions.
    pub fn stats(&self) -> StatsSnapshot {
        let mut snap = self.inner.stats.snapshot();
        if let Some(server) = self.inner.server.lock().as_ref() {
            snap.calls_shed_global += server.shed_global();
            snap.calls_shed_quota += server.shed_quota();
        }
        snap
    }

    /// The space's trace ring (the collector's flight recorder).
    pub fn trace_ring(&self) -> &Arc<TraceRing> {
        &self.inner.trace
    }

    /// A snapshot of the surviving trace events, in emission order.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.inner.trace.snapshot()
    }

    /// The space's span ring (the application-call flight recorder).
    pub fn span_ring(&self) -> &Arc<SpanRing> {
        &self.inner.spans
    }

    /// A snapshot of the surviving call spans, in emission order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.snapshot()
    }

    /// The full observability snapshot: counters, latency histograms and
    /// gauges. Deterministic under a virtual clock.
    pub fn metrics(&self) -> Metrics {
        let app_calls = self
            .inner
            .app_hist
            .read()
            .iter()
            .map(|(label, h)| (label.clone(), h.snapshot()))
            .collect();
        let gc_calls = std::array::from_fn(|i| self.inner.gc_hist[i].snapshot());
        let (queue_depth, queue_high_water, reactor) = {
            let server = self.inner.server.lock();
            server
                .as_ref()
                .map(|s| {
                    (
                        s.queue_depth() as u64,
                        s.queue_high_water() as u64,
                        s.reactor_stats(),
                    )
                })
                .unwrap_or((0, 0, None))
        };
        let reactor = reactor.unwrap_or_default();
        let gauges = Gauges {
            exports: self.exported_count() as u64,
            surrogates: self.inner.table.imports.len() as u64,
            dirty_entries: self.inner.table.exports.dirty_entry_count(),
            pending_clean_retries: self.inner.pending_clean_retries.load(Ordering::Relaxed),
            server_queue_depth: queue_depth,
            server_queue_high_water: queue_high_water,
            pool_connections: self.inner.clients.read().len() as u64,
            open_breakers: self
                .inner
                .breakers
                .read()
                .values()
                .filter(|b| b.state() == BreakerState::Open)
                .count() as u64,
            reactor_connections: reactor.connections,
            reactor_readiness_depth: reactor.readiness_depth,
            reactor_readiness_high_water: reactor.readiness_high_water,
            reactor_frames_flushed: reactor.frames_flushed,
            reactor_flush_syscalls: reactor.flush_syscalls,
        };
        // Per-client quota gauges are assembled only under a finite
        // budget: client ids are random per process, so unconditional
        // emission would make the exposition nondeterministic for
        // deployments that never asked for quotas.
        let mut per_client: BTreeMap<String, ClientQuotaGauges> = BTreeMap::new();
        if !self.inner.options.budget.is_unlimited() {
            if let Some(server) = self.inner.server.lock().as_ref() {
                for (id, usage) in server.per_client() {
                    let g = per_client.entry(format!("{id}")).or_default();
                    g.connections = usage.connections;
                    g.queued = usage.queued;
                    g.inflight = usage.inflight;
                    g.shed = usage.shed_quota;
                }
            }
            for (id, fp) in self.inner.table.exports.client_footprints() {
                let g = per_client.entry(format!("{id}")).or_default();
                g.export_slots = fp.dirty as u64;
                g.dirty_entries = (fp.dirty + fp.floors) as u64;
            }
        }
        Metrics {
            space: self.id(),
            stats: self.stats(),
            app_calls,
            gc_calls,
            gauges,
            per_client,
        }
    }

    /// [`Space::metrics`] rendered in Prometheus text exposition format.
    pub fn metrics_text(&self) -> String {
        self.metrics().to_prometheus_text()
    }

    /// Records one application-call latency observation under `label`.
    pub(crate) fn record_app_call(&self, label: &str, d: Duration) {
        // Taken in two statements so the read guard is released before a
        // miss upgrades to the write lock.
        let hit = self.inner.app_hist.read().get(label).cloned();
        let hist = match hit {
            Some(h) => h,
            None => {
                let mut map = self.inner.app_hist.write();
                Arc::clone(map.entry(label.to_string()).or_default())
            }
        };
        hist.record(d);
    }

    /// Records one collector-RPC latency observation. `kind` indexes
    /// [`GC_KINDS`].
    pub(crate) fn record_gc_call(&self, kind: usize, d: Duration) {
        debug_assert!(kind < GC_KINDS.len());
        self.inner.gc_hist[kind].record(d);
    }

    /// Records one collector trace event.
    pub(crate) fn emit(&self, kind: TraceKind) {
        self.inner.trace.record(kind);
    }

    /// Number of concrete objects currently held in the object table,
    /// excluding built-ins at reserved indices (the GC service, agent and
    /// introspection objects live forever and would otherwise make every
    /// listening space report a nonzero count).
    pub fn exported_count(&self) -> usize {
        self.inner.table.exports.exported_count()
    }

    /// Number of import slots (surrogate life cycles) currently tracked.
    pub fn imported_count(&self) -> usize {
        self.inner.table.imports.len()
    }

    /// True after [`Space::shutdown`] or [`Space::crash`].
    pub fn is_stopped(&self) -> bool {
        self.inner.stopped.load(Ordering::Acquire)
    }

    pub(crate) fn from_inner(inner: Arc<SpaceInner>) -> Space {
        Space { inner }
    }

    // -- export / handles ----------------------------------------------------

    /// Exports `obj`, pinning it in the object table, and returns a local
    /// handle. Pinned exports survive empty dirty sets — use this for
    /// roots that will be registered with the agent or served forever.
    pub fn export(&self, obj: Arc<dyn NetObject>) -> NetResult<Handle> {
        self.ensure_running()?;
        let (ix, _, created) = self.inner.table.exports.export(&obj, true);
        if created {
            self.emit(TraceKind::ExportCreated {
                owner: self.id(),
                target: WireRep::new(self.id(), ix),
            });
        }
        Ok(Handle(HandleKind::Local {
            space: self.clone(),
            obj,
        }))
    }

    /// Wraps `obj` in a local handle without pinning it: the object enters
    /// the table only when first marshaled, and leaves it when no remote
    /// references remain.
    pub fn local(&self, obj: Arc<dyn NetObject>) -> Handle {
        Handle(HandleKind::Local {
            space: self.clone(),
            obj,
        })
    }

    /// Releases the pin of an explicit export; the entry is collected once
    /// no dirty or transient entries protect it.
    pub fn unexport(&self, handle: &Handle) -> NetResult<()> {
        let HandleKind::Local { obj, .. } = &handle.0 else {
            return Err(Error::app("unexport requires a local handle"));
        };
        let collected = self.inner.table.exports.unexport(obj);
        if let Some((ix, true)) = collected {
            self.inner
                .stats
                .exports_collected
                .fetch_add(1, Ordering::Relaxed);
            self.emit(TraceKind::ExportCollected {
                owner: self.id(),
                target: WireRep::new(self.id(), ix),
            });
        }
        Ok(())
    }

    /// Installs `obj` at a reserved index (used by the agent, index 1).
    pub fn export_builtin(&self, ix: ObjIx, obj: Arc<dyn NetObject>) -> NetResult<Handle> {
        self.ensure_running()?;
        self.inner.table.exports.export_at(ix, Arc::clone(&obj));
        Ok(Handle(HandleKind::Local {
            space: self.clone(),
            obj,
        }))
    }

    /// Bootstrap import: obtains a handle to the object exported at `ix`
    /// by whatever space listens at `ep` (used to reach an agent).
    pub fn import_root(&self, ep: &Endpoint, ix: ObjIx) -> NetResult<Handle> {
        self.ensure_running()?;
        let (owner_id, _owner_ep) = dgc::identify(self, ep)?;
        let wirerep = WireRep::new(owner_id, ix);
        if owner_id == self.id() {
            let got = self.inner.table.exports.get(ix);
            let (obj, _types) = got.ok_or(Error::NoSuchObject(wirerep))?;
            return Ok(Handle(HandleKind::Local {
                space: self.clone(),
                obj,
            }));
        }
        dgc::import_ref(self, wirerep, ep.clone(), TypeList::root_only(), None)
    }

    // -- marshal/unmarshal hooks ----------------------------------------------

    pub(crate) fn lookup_export(&self, obj: &Arc<dyn NetObject>) -> Option<WireRep> {
        self.inner
            .table
            .exports
            .lookup(obj)
            .map(|ix| WireRep::new(self.id(), ix))
    }

    pub(crate) fn prepare_send(&self, handle: &Handle) -> NetResult<SentRef> {
        self.inner.stats.refs_sent.fetch_add(1, Ordering::Relaxed);
        match &handle.0 {
            HandleKind::Local { space, obj } => {
                if !Arc::ptr_eq(&space.inner, &self.inner) {
                    return Err(Error::app("handle belongs to a different space"));
                }
                let owner_ep = self.endpoint().ok_or(Error::NotListening)?;
                let (ix, types, pin, created) = self.inner.table.exports.export_transient(obj);
                let target = WireRep::new(self.id(), ix);
                if created {
                    self.emit(TraceKind::ExportCreated {
                        owner: self.id(),
                        target,
                    });
                }
                self.emit(TraceKind::TransientPinned {
                    owner: self.id(),
                    target,
                    pin,
                });
                Ok(SentRef {
                    wirerep: WireRep::new(self.id(), ix),
                    owner_ep,
                    types,
                    pin: Some(TransientPin(PinKind::Owner {
                        space: self.clone(),
                        ix,
                        pin,
                    })),
                })
            }
            HandleKind::Remote(core) => Ok(SentRef {
                wirerep: core.wirerep,
                owner_ep: core.owner_ep.clone(),
                types: core.types.clone(),
                pin: Some(TransientPin(PinKind::Client(Arc::clone(core)))),
            }),
        }
    }

    pub(crate) fn receive_ref(
        &self,
        cx: &mut UnmarshalCx<'_, '_>,
        wirerep: WireRep,
        owner_ep: Endpoint,
        types: TypeList,
    ) -> NetResult<Handle> {
        self.inner
            .stats
            .refs_received
            .fetch_add(1, Ordering::Relaxed);
        if wirerep.space == self.id() {
            // "If a client transmits a network object back to its owner,
            // the object table causes the owner to access the concrete
            // object; no surrogate is created."
            let got = self.inner.table.exports.get(wirerep.ix);
            let (obj, _types) = got.ok_or(Error::NoSuchObject(wirerep))?;
            return Ok(Handle(HandleKind::Local {
                space: self.clone(),
                obj,
            }));
        }
        dgc::import_ref(self, wirerep, owner_ep, types, Some(cx))
    }

    pub(crate) fn release_transient(&self, ix: ObjIx, pin: u64) {
        let collected = self.inner.table.exports.remove_transient(ix, pin);
        let target = WireRep::new(self.id(), ix);
        self.emit(TraceKind::TransientReleased {
            owner: self.id(),
            target,
            pin,
        });
        if collected {
            self.inner
                .stats
                .exports_collected
                .fetch_add(1, Ordering::Relaxed);
            self.emit(TraceKind::ExportCollected {
                owner: self.id(),
                target,
            });
        }
    }

    pub(crate) fn notify_surrogate_unreachable(&self, wirerep: WireRep, epoch: u64) {
        if self.is_stopped() {
            return;
        }
        self.emit(TraceKind::SurrogateDropped {
            client: self.id(),
            target: wirerep,
            epoch,
        });
        let tx = self.inner.gc_tx.lock().clone();
        if let Some(tx) = tx {
            let _ = tx.send(GcJob::Unreachable { wirerep, epoch });
        }
    }

    pub(crate) fn next_gc_seqno(&self) -> u64 {
        self.inner.gc_seqno.fetch_add(1, Ordering::Relaxed)
    }

    // -- RPC plumbing -----------------------------------------------------------

    /// Returns a cached (or fresh) RPC client to `ep`.
    pub(crate) fn rpc_client(&self, ep: &Endpoint) -> NetResult<Arc<CallClient>> {
        self.ensure_running()?;
        let had_stale = {
            let clients = self.inner.clients.read();
            match clients.get(ep) {
                Some(c) if !c.is_closed() => return Ok(Arc::clone(c)),
                Some(_) => true,
                None => false,
            }
        };
        let conn = self.inner.registry.connect(ep)?;
        let fresh =
            CallClient::with_clock(Arc::from(conn), self.id(), self.inner.options.clock.clone());
        let mut clients = self.inner.clients.write();
        match clients.get(ep) {
            Some(c) if !c.is_closed() => Ok(Arc::clone(c)),
            _ => {
                if had_stale {
                    self.inner.stats.reconnects.fetch_add(1, Ordering::Relaxed);
                }
                clients.insert(ep.clone(), Arc::clone(&fresh));
                Ok(fresh)
            }
        }
    }

    /// Drops `client` from the connection cache (if it is still the cached
    /// entry) so the next call reconnects instead of reusing a broken
    /// connection.
    pub(crate) fn invalidate_client(&self, ep: &Endpoint, client: &Arc<CallClient>) {
        client.close();
        let mut clients = self.inner.clients.write();
        if let Some(c) = clients.get(ep) {
            if Arc::ptr_eq(c, client) {
                clients.remove(ep);
                self.inner.stats.reconnects.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The circuit breaker guarding calls to `ep`.
    pub(crate) fn breaker_for(&self, ep: &Endpoint) -> Arc<CircuitBreaker> {
        // Hot path: the breaker already exists; no clone of `ep`, no
        // exclusive lock.
        if let Some(b) = self.inner.breakers.read().get(ep) {
            return Arc::clone(b);
        }
        let mut breakers = self.inner.breakers.write();
        Arc::clone(breakers.entry(ep.clone()).or_insert_with(|| {
            Arc::new(CircuitBreaker::with_clock(
                self.inner.options.breaker.clone(),
                self.inner.options.clock.clone(),
            ))
        }))
    }

    /// Records that the owner space `id` is dead: every surrogate into it
    /// becomes *broken* and fails fast with [`Error::OwnerDead`].
    pub(crate) fn mark_owner_dead(&self, id: SpaceId) {
        if id == self.id() {
            return;
        }
        let inserted = {
            let mut dead = self.inner.dead_owners.lock();
            let inserted = dead.insert(id);
            self.inner
                .dead_owner_count
                .store(dead.len(), Ordering::Release);
            inserted
        };
        if inserted {
            self.emit(TraceKind::OwnerDead {
                client: self.id(),
                owner: id,
            });
        }
    }

    /// True if `id` has been declared dead.
    pub fn owner_is_dead(&self, id: SpaceId) -> bool {
        // No owner has ever died (the common case): skip the lock.
        self.inner.dead_owner_count.load(Ordering::Acquire) != 0
            && self.inner.dead_owners.lock().contains(&id)
    }

    /// Issues one logical call through the resilience machinery: breaker
    /// admission, classification-aware retries with backoff, connection
    /// invalidation, and broken-surrogate fail-fast.
    ///
    /// *Not-delivered* failures retry unconditionally (within the retry
    /// budget); *ambiguous* failures retry only when `idempotent`, and are
    /// otherwise surfaced after a transparent reconnect so the next call
    /// finds a live connection; *definite* failures are the result.
    pub(crate) fn resilient_call(
        &self,
        target: WireRep,
        ep: &Endpoint,
        method: u32,
        args: Bytes,
        timeout: Duration,
        idempotent: bool,
    ) -> NetResult<CallReply> {
        let mut meta = CallMeta::default();
        let now = self.inner.options.clock.now();
        self.resilient_call_traced(
            target, ep, method, args, timeout, idempotent, 0, 0, now, &mut meta,
        )
    }

    /// [`Space::resilient_call`] carrying a span header and reporting, via
    /// `meta`, how the call went — filled in on success *and* failure so
    /// the caller's span record is accurate either way.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn resilient_call_traced(
        &self,
        target: WireRep,
        ep: &Endpoint,
        method: u32,
        args: Bytes,
        timeout: Duration,
        idempotent: bool,
        trace_id: u64,
        span_id: u64,
        now: Instant,
        meta: &mut CallMeta,
    ) -> NetResult<CallReply> {
        let stats = &self.inner.stats;
        if self.owner_is_dead(target.space) {
            stats.calls_failed_fast.fetch_add(1, Ordering::Relaxed);
            meta.rejected = true;
            return Err(Error::OwnerDead(target.space));
        }
        let breaker = self.breaker_for(ep);
        meta.breaker_open = breaker.state() != BreakerState::Closed;
        let seed = self.inner.retry_seed.fetch_add(1, Ordering::Relaxed);
        let mut backoff = Backoff::new(self.inner.options.retry.clone(), seed);
        let clock = &self.inner.options.clock;
        // `now` is the caller's clock read from just before entry — the
        // zero-retry fast path spends no further clock reads here; retry
        // iterations refresh it below.
        let deadline = now + timeout;
        let mut now = now;
        loop {
            if breaker.admit() == Admission::Reject {
                stats.calls_failed_fast.fetch_add(1, Ordering::Relaxed);
                meta.rejected = true;
                return Err(Error::from(CircuitBreaker::rejection_error()));
            }
            let remaining = deadline.saturating_duration_since(now);
            if remaining.is_zero() {
                return Err(Error::Rpc(RpcError::Timeout));
            }
            // Connect failures never delivered anything: retryable.
            let client = match self.rpc_client(ep) {
                Ok(c) => c,
                Err(e) => {
                    if matches!(e, Error::SpaceStopped) {
                        return Err(e);
                    }
                    if breaker.on_failure() {
                        stats.breaker_opened.fetch_add(1, Ordering::Relaxed);
                    }
                    if !self.retry_pause(&mut backoff, deadline) {
                        return Err(e);
                    }
                    meta.retries += 1;
                    now = clock.now();
                    continue;
                }
            };
            let attempt_deadline = backoff.policy().attempt_deadline(remaining);
            let failure = match client.call_raw_traced(
                target,
                method,
                args.clone(),
                attempt_deadline,
                trace_id,
                span_id,
            ) {
                Ok(reply) => {
                    breaker.on_success();
                    return Ok(reply);
                }
                Err(f) => f,
            };
            if failure.counts_against_peer() {
                if breaker.on_failure() {
                    stats.breaker_opened.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                // A definite remote error proves the peer alive.
                breaker.on_success();
            }
            let conn_broken = client.is_closed()
                || matches!(failure.error, RpcError::Transport(_) | RpcError::Closed);
            if conn_broken {
                self.invalidate_client(ep, &client);
            }
            match failure.class {
                FailureClass::Definite => return Err(Error::from(failure.error)),
                FailureClass::NotDelivered => {}
                FailureClass::Ambiguous => {
                    if !idempotent {
                        // The call's effect is unknown; a retry could
                        // execute it twice. Reconnect transparently (so
                        // later calls are not taxed by the broken
                        // connection) and surface the ambiguity.
                        if conn_broken {
                            let _ = self.rpc_client(ep);
                        }
                        return Err(Error::from(failure.error));
                    }
                }
            }
            if !self.retry_pause(&mut backoff, deadline) {
                return Err(Error::from(failure.error));
            }
            meta.retries += 1;
            now = clock.now();
        }
    }

    /// Sleeps out the next backoff delay if another attempt is allowed and
    /// budget remains; returns false when the caller should give up.
    fn retry_pause(&self, backoff: &mut Backoff, deadline: Instant) -> bool {
        if !backoff.attempts_remain() {
            return false;
        }
        let clock = &self.inner.options.clock;
        let remaining = deadline.saturating_duration_since(clock.now());
        if remaining.is_zero() {
            return false;
        }
        let delay = backoff.next_delay().min(remaining);
        clock.sleep(delay);
        self.inner
            .stats
            .retries_attempted
            .fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Issues one application-level remote call, recording a client span
    /// and a latency observation under `label` (empty → `m<method>`).
    ///
    /// The span continues whatever trace is ambient on this thread (set by
    /// the server dispatcher while a request is being served), so fan-out
    /// calls made from inside a dispatched method share the root caller's
    /// trace id; otherwise a fresh trace id is allocated here.
    pub(crate) fn remote_call(
        &self,
        core: &SurrogateCore,
        method: u32,
        args: impl Into<Bytes>,
        idempotent: bool,
        label: &str,
    ) -> NetResult<CallReply> {
        self.inner.stats.calls_sent.fetch_add(1, Ordering::Relaxed);
        let scope = span::current_scope();
        let trace_id = if scope.trace_id != 0 {
            scope.trace_id
        } else {
            self.inner.ids.next_id()
        };
        let span_id = self.inner.ids.next_id();
        let clock = &self.inner.options.clock;
        let args = args.into();
        let marshal_bytes = args.len() as u64;
        let start = clock.now();
        let start_micros = self.inner.spans.micros_at(start);
        let mut meta = CallMeta::default();
        let result = self.resilient_call_traced(
            core.wirerep,
            &core.owner_ep,
            method,
            args,
            self.inner.options.call_timeout,
            idempotent,
            trace_id,
            span_id,
            start,
            &mut meta,
        );
        let duration = clock.now().saturating_duration_since(start);
        let outcome = match &result {
            Ok(_) => SpanOutcome::Ok,
            Err(Error::App(_)) => SpanOutcome::AppError,
            Err(_) if meta.rejected => SpanOutcome::Rejected,
            Err(_) => SpanOutcome::Failed,
        };
        let label = if label.is_empty() {
            format!("m{method}")
        } else {
            label.to_string()
        };
        self.record_app_call(&label, duration);
        self.inner.spans.record(SpanRecord {
            seq: 0,
            trace_id,
            span_id,
            parent_span: scope.span_id,
            kind: SpanKind::Client,
            space: self.id(),
            peer: core.wirerep.space,
            target: core.wirerep,
            method,
            label,
            start_micros,
            duration_micros: duration.as_micros() as u64,
            queue_wait_micros: 0,
            service_micros: 0,
            marshal_bytes,
            unmarshal_bytes: result.as_ref().map(|r| r.bytes.len() as u64).unwrap_or(0),
            retries: meta.retries,
            breaker_open: meta.breaker_open,
            outcome,
        });
        result
    }

    pub(crate) fn ensure_running(&self) -> NetResult<()> {
        if self.is_stopped() {
            Err(Error::SpaceStopped)
        } else {
            Ok(())
        }
    }

    // -- lifecycle -------------------------------------------------------------

    /// Gracefully stops the space: the server stops accepting, demons
    /// exit, cached connections close. Outstanding handles in other spaces
    /// are *not* cleaned; peers discover the death by ping/lease, exactly
    /// as for a process exit.
    pub fn shutdown(&self) {
        if self.inner.stopped.swap(true, Ordering::AcqRel) {
            return;
        }
        *self.inner.gc_tx.lock() = None;
        if let Some(mut server) = self.inner.server.lock().take() {
            server.stop();
        }
        for (_, c) in self.inner.clients.write().drain() {
            c.close();
        }
        if let Some(h) = self.inner.demon.lock().take() {
            let _ = h.join();
        }
        if let Some(h) = self.inner.pinger.lock().take() {
            let _ = h.join();
        }
    }

    /// Abrupt termination for fault experiments: identical to
    /// [`Space::shutdown`] (a crashed process sends no goodbyes either),
    /// provided separately so call sites document intent.
    pub fn crash(&self) {
        if !self.is_stopped() {
            self.emit(TraceKind::SpaceCrashed { space: self.id() });
        }
        self.shutdown();
    }
}

impl Drop for SpaceInner {
    fn drop(&mut self) {
        // Demons hold only Weak references and their channel sender lives
        // in `gc_tx`, so dropping the inner naturally stops them; join
        // handles are detached here (threads exit on channel disconnect).
        self.stopped.store(true, Ordering::Release);
        *self.gc_tx.lock() = None;
        if let Some(mut server) = self.server.lock().take() {
            server.stop();
        }
        for (_, c) in self.clients.write().drain() {
            c.close();
        }
    }
}

/// What `prepare_send` produced for one transmitted reference.
pub(crate) struct SentRef {
    pub wirerep: WireRep,
    pub owner_ep: Endpoint,
    pub types: TypeList,
    pub pin: Option<TransientPin>,
}

/// How one resilient call went, for the caller's span record.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct CallMeta {
    /// Retry attempts beyond the first.
    pub(crate) retries: u32,
    /// The peer's breaker was not closed when the call was issued.
    pub(crate) breaker_open: bool,
    /// The call was refused without touching the network.
    pub(crate) rejected: bool,
}

/// Routes incoming RPC requests into the space.
struct SpaceDispatcher(Weak<SpaceInner>);

impl Dispatcher for SpaceDispatcher {
    fn dispatch(&self, caller: SpaceId, target: WireRep, method: u32, args: &[u8]) -> Dispatch {
        self.dispatch_cx(DispatchCx::default(), caller, target, method, args)
    }

    fn dispatch_cx(
        &self,
        cx: DispatchCx,
        caller: SpaceId,
        target: WireRep,
        method: u32,
        args: &[u8],
    ) -> Dispatch {
        let Some(inner) = self.0.upgrade() else {
            return Dispatch::plain(Err(to_remote_error(&Error::SpaceStopped)));
        };
        let space = Space::from_inner(inner);
        let stats = &space.inner.stats;

        // The collector service answers at index 0 under *any* space id:
        // bootstrap callers do not yet know this space's identity.
        if target.ix == ObjIx::GC_SERVICE {
            stats.calls_served.fetch_add(1, Ordering::Relaxed);
            return Dispatch::plain(
                dgc::dispatch_gc(&space, caller, method, args).map_err(|e| to_remote_error(&e)),
            );
        }
        if target.space != space.id() {
            stats.calls_rejected.fetch_add(1, Ordering::Relaxed);
            return Dispatch::plain(Err(to_remote_error(&Error::NoSuchObject(target))));
        }
        let got = space.inner.table.exports.get(target.ix);
        let Some((obj, _types)) = got else {
            stats.calls_rejected.fetch_add(1, Ordering::Relaxed);
            return Dispatch::plain(Err(to_remote_error(&Error::NoSuchObject(target))));
        };
        // An object will actually run: this is a served call. Counting
        // here (not at entry) keeps `calls_served` honest — refused
        // requests land in `calls_rejected` above instead.
        stats.calls_served.fetch_add(1, Ordering::Relaxed);

        // Continue the caller's trace, or root a fresh one for requests
        // from peers predating the span header (ids 0). The scope guard
        // makes the ids ambient on this worker thread, so any remote call
        // the method body issues becomes a child span of this one.
        let trace_id = if cx.trace_id != 0 {
            cx.trace_id
        } else {
            space.inner.ids.next_id()
        };
        let server_span = space.inner.ids.next_id();
        let _scope = span::enter_scope(TraceScope {
            trace_id,
            span_id: server_span,
        });
        let clock = &space.inner.options.clock;
        let queue_wait_micros = cx.queue_wait.as_micros() as u64;
        let start_micros = space
            .inner
            .spans
            .now_micros()
            .saturating_sub(queue_wait_micros);
        let svc_start = clock.now();
        let outcome = obj.dispatch(&space, method, args);
        let service = clock.now().saturating_duration_since(svc_start);
        space.inner.spans.record(SpanRecord {
            seq: 0,
            trace_id,
            span_id: server_span,
            parent_span: cx.span_id,
            kind: SpanKind::Server,
            space: space.id(),
            peer: caller,
            target,
            method,
            label: String::new(),
            start_micros,
            duration_micros: queue_wait_micros + service.as_micros() as u64,
            queue_wait_micros,
            service_micros: service.as_micros() as u64,
            marshal_bytes: args.len() as u64,
            unmarshal_bytes: outcome.as_ref().map(|r| r.bytes.len() as u64).unwrap_or(0),
            retries: 0,
            breaker_open: false,
            outcome: match &outcome {
                Ok(_) => SpanOutcome::Ok,
                Err(_) => SpanOutcome::AppError,
            },
        });
        // Static labels for the common low method numbers keep the
        // per-dispatch histogram lookup allocation-free.
        const SERVE_LABELS: [&str; 16] = [
            "serve/m0",
            "serve/m1",
            "serve/m2",
            "serve/m3",
            "serve/m4",
            "serve/m5",
            "serve/m6",
            "serve/m7",
            "serve/m8",
            "serve/m9",
            "serve/m10",
            "serve/m11",
            "serve/m12",
            "serve/m13",
            "serve/m14",
            "serve/m15",
        ];
        match SERVE_LABELS.get(method as usize) {
            Some(label) => space.record_app_call(label, service),
            None => space.record_app_call(&format!("serve/m{method}"), service),
        }
        match outcome {
            Ok(result) => {
                let completion: Option<Box<dyn FnOnce() + Send>> = if result.pins.is_empty() {
                    None
                } else {
                    let pins = result.pins;
                    Some(Box::new(move || drop(pins)))
                };
                Dispatch {
                    outcome: Ok(result.bytes),
                    completion,
                }
            }
            Err(e) => Dispatch::plain(Err(to_remote_error(&e))),
        }
    }
}
