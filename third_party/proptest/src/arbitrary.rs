//! `any::<T>()` — the default strategy for a type.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a default generation strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the default strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Any<T> {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Bias 1-in-8 draws toward the boundary values where
                // encoders historically break (zero, ±1, extremes).
                if rng.next_u64() % 8 == 0 {
                    let edges = [0 as $t, 1 as $t, <$t>::MAX, <$t>::MIN, <$t>::MAX - 1];
                    edges[rng.below(edges.len())]
                } else {
                    rng.next_u64() as $t
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! arbitrary_wide_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.next_u64() % 8 == 0 {
                    let edges = [0 as $t, 1 as $t, <$t>::MAX, <$t>::MIN];
                    edges[rng.below(edges.len())]
                } else {
                    (((rng.next_u64() as u128) << 64) | rng.next_u64() as u128) as $t
                }
            }
        }
    )*};
}

arbitrary_wide_int!(u128, i128);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        crate::string::arbitrary_char(rng)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Mostly finite values across many magnitudes; occasional specials.
        match rng.next_u64() % 16 {
            0 => f64::NAN,
            1 => f64::INFINITY,
            2 => f64::NEG_INFINITY,
            3 => 0.0,
            4 => -0.0,
            _ => {
                let mantissa = rng.unit_f64() * 2.0 - 1.0;
                let exp = (rng.next_u64() % 600) as i32 - 300;
                mantissa * 10f64.powi(exp)
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ints_hit_edges_eventually() {
        let mut zeros = 0;
        let mut maxes = 0;
        for case in 0..400 {
            let mut rng = TestRng::deterministic("arb", case);
            let v = u64::arbitrary(&mut rng);
            if v == 0 {
                zeros += 1;
            }
            if v == u64::MAX {
                maxes += 1;
            }
        }
        assert!(zeros > 0 && maxes > 0);
    }

    #[test]
    fn any_is_a_strategy() {
        let s = any::<i32>();
        let mut rng = TestRng::deterministic("any", 0);
        let _: i32 = s.generate(&mut rng);
    }
}
