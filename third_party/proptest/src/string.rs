//! String generation for `&str` pattern strategies.
//!
//! Supports the two pattern shapes used in this workspace:
//!
//! - `".*"` — arbitrary strings (possibly empty, possibly non-ASCII);
//! - `"[class]{m,n}"` — `m..=n` characters drawn from a character class
//!   with literal characters and `a-z`-style ranges.
//!
//! Anything unparsable falls back to the `".*"` behaviour, which keeps
//! unknown patterns generating *something* rather than failing the build
//! of an otherwise-passing suite.

use crate::test_runner::TestRng;

/// An arbitrary char: mostly printable ASCII, sometimes further afield so
/// multi-byte UTF-8 paths get exercised.
pub fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.next_u64() % 8 {
        // Printable ASCII most of the time.
        0..=5 => (0x20 + rng.below(0x5f) as u32) as u8 as char,
        6 => {
            // Latin-1 / BMP two- and three-byte encodings.
            const SAMPLES: &[char] = &['é', 'ß', 'λ', '日', '本', '語', '—', '€', '\u{80}'];
            SAMPLES[rng.below(SAMPLES.len())]
        }
        _ => {
            // Anywhere in the supplementary planes (four-byte encodings),
            // avoiding the surrogate gap by construction.
            char::from_u32(0x10000 + (rng.next_u64() % 0xFFFF) as u32).unwrap_or('\u{10348}')
        }
    }
}

/// Generates a string matching `pattern` (see module docs for the
/// supported subset).
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    match parse_class_repeat(pattern) {
        Some((chars, lo, hi)) if !chars.is_empty() => {
            let n = lo + rng.below(hi - lo + 1);
            (0..n).map(|_| chars[rng.below(chars.len())]).collect()
        }
        _ => {
            // ".*" and fallback: length skewed toward short strings.
            let n = match rng.next_u64() % 4 {
                0 => 0,
                1 => rng.below(4),
                2 => rng.below(16),
                _ => rng.below(64),
            };
            (0..n).map(|_| arbitrary_char(rng)).collect()
        }
    }
}

/// Parses `[class]{m,n}` into (member chars, m, n).
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let counts = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let lo: usize = lo.trim().parse().ok()?;
    let hi: usize = hi.trim().parse().ok()?;
    if lo > hi {
        return None;
    }

    let mut chars = Vec::new();
    let cs: Vec<char> = class.chars().collect();
    let mut i = 0;
    while i < cs.len() {
        // `a-z` is a range when the dash is between two chars; a leading
        // or trailing dash is a literal.
        if i + 2 < cs.len() && cs[i + 1] == '-' {
            let (start, end) = (cs[i] as u32, cs[i + 2] as u32);
            if start > end {
                return None;
            }
            chars.extend((start..=end).filter_map(char::from_u32));
            i += 3;
        } else {
            chars.push(cs[i]);
            i += 1;
        }
    }
    Some((chars, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_pattern_respected() {
        for case in 0..100 {
            let mut rng = TestRng::deterministic("class", case);
            let s = generate_matching("[a-z.]{1,20}", &mut rng);
            assert!((1..=20).contains(&s.chars().count()), "len of {s:?}");
            assert!(s.chars().all(|c| c == '.' || c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_literal_dash() {
        for case in 0..100 {
            let mut rng = TestRng::deterministic("dash", case);
            let s = generate_matching("[a-zA-Z0-9._-]{1,40}", &mut rng);
            assert!((1..=40).contains(&s.chars().count()));
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || ".-_".contains(c)));
        }
    }

    #[test]
    fn dot_star_produces_varied_strings() {
        let mut empties = 0;
        let mut non_ascii = 0;
        for case in 0..200 {
            let mut rng = TestRng::deterministic("dotstar", case);
            let s = generate_matching(".*", &mut rng);
            if s.is_empty() {
                empties += 1;
            }
            if !s.is_ascii() {
                non_ascii += 1;
            }
        }
        assert!(empties > 0, "should generate empty strings");
        assert!(non_ascii > 0, "should exercise multi-byte UTF-8");
    }

    #[test]
    fn generated_chars_are_valid() {
        for case in 0..500 {
            let mut rng = TestRng::deterministic("chars", case);
            let c = arbitrary_char(&mut rng);
            let mut buf = [0u8; 4];
            let _ = c.encode_utf8(&mut buf);
        }
    }
}
