//! Vendored subset of the `proptest` API.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. It keeps the property-test
//! surface the test suites use — `proptest!`, `prop_assert*`,
//! `prop_oneof!`, `Just`, `any`, ranges and `&str` patterns as
//! strategies, `prop_map`/`prop_recursive`, and `collection::vec` — with
//! deterministic per-test-case seeding so failures reproduce.
//!
//! Two deliberate simplifications relative to upstream: failing cases are
//! *not* shrunk (the failing input is printed as generated), and string
//! "regex" strategies support the two shapes the suites use (`.*` and a
//! single `[class]{m,n}` repetition) rather than full regex syntax.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(binding in strategy, ...)` body
/// runs once per generated case.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_body! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (
        ($cfg:expr)
        $(
            $(#[$attr:meta])*
            fn $name:ident ( $( $binding:ident in $strat:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        case as u64,
                    );
                    $(
                        let $binding =
                            $crate::strategy::Strategy::generate(&$strat, &mut rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e
                        );
                    }
                }
            }
        )*
    };
}

/// A strategy choosing uniformly between the listed sub-strategies.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $strat:expr ),+ $(,)? ) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strat) ),+
        ])
    };
}

/// Fails the current test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current test case unless the two values compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, "assertion failed: {:?} != {:?}", left, right);
    }};
}

/// Fails the current test case if the two values compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left != right, "assertion failed: {:?} == {:?}", left, right);
    }};
}
