//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy for `Vec`s whose length is drawn from `len` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range in collection::vec");
    VecStrategy { element, len }
}

#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + rng.below(span);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arbitrary::any;

    #[test]
    fn lengths_respect_range() {
        let s = vec(any::<u8>(), 2..5);
        for case in 0..100 {
            let mut rng = TestRng::deterministic("vec", case);
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn zero_length_possible() {
        let s = vec(any::<u8>(), 0..3);
        let mut saw_empty = false;
        for case in 0..60 {
            let mut rng = TestRng::deterministic("vec0", case);
            saw_empty |= s.generate(&mut rng).is_empty();
        }
        assert!(saw_empty);
    }
}
