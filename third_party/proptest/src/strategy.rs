//! The `Strategy` trait and the combinators the test suites use.

use std::ops::Range;
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike upstream proptest there is no value-tree/shrinking layer: a
/// strategy simply produces a value from the case RNG.
pub trait Strategy: Clone {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies a function to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        F: Fn(Self::Value) -> U + Clone,
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and `f`
    /// wraps an inner strategy into one producing the next nesting level.
    /// `depth` bounds the nesting; the size/branch hints are accepted for
    /// API compatibility but not used.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Each level is "a leaf, or one more wrapping of the previous
            // level", so generated nesting depths vary from 0 to `depth`.
            current = Union::new(vec![leaf.clone(), f(current).boxed()]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe view of a strategy, for [`BoxedStrategy`].
trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> BoxedStrategy<V> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U + Clone> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies (the `prop_oneof!` result).
pub struct Union<V> {
    arms: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Union<V> {
        Union {
            arms: self.arms.clone(),
        }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let ix = rng.below(self.arms.len());
        self.arms[ix].generate(rng)
    }
}

/// A strategy always producing clones of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Half-open numeric ranges are strategies over their element type.

macro_rules! uint_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

uint_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuples of strategies generate tuples of values.

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
}

// String patterns (`".*"`, `"[a-z]{1,20}"`) are strategies over String.

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy::tests", 0)
    }

    #[test]
    fn just_yields_value() {
        assert_eq!(Just(41).generate(&mut rng()), 41);
    }

    #[test]
    fn map_applies() {
        let s = (0u32..10).prop_map(|v| v * 2);
        for case in 0..100 {
            let mut r = TestRng::deterministic("map", case);
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 20);
        }
    }

    #[test]
    fn union_hits_every_arm() {
        let s = crate::prop_oneof![Just(1), Just(2), Just(3)];
        let mut seen = [false; 3];
        for case in 0..64 {
            let mut r = TestRng::deterministic("union", case);
            seen[s.generate(&mut r) as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn recursive_varies_depth() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(c) => 1 + depth(c),
            }
        }
        let s = Just(Tree::Leaf).prop_recursive(4, 64, 8, |inner| {
            inner.prop_map(|t| Tree::Node(Box::new(t)))
        });
        let mut depths = std::collections::HashSet::new();
        for case in 0..200 {
            let mut r = TestRng::deterministic("rec", case);
            let d = depth(&s.generate(&mut r));
            assert!(d <= 4);
            depths.insert(d);
        }
        assert!(depths.len() >= 3, "expected varied depths, got {depths:?}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        for case in 0..200 {
            let mut r = TestRng::deterministic("range", case);
            let a = (1usize..40).generate(&mut r);
            assert!((1..40).contains(&a));
            let b = (-1e300f64..1e300).generate(&mut r);
            assert!(b.is_finite());
            let c = (-5i64..-1).generate(&mut r);
            assert!((-5..-1).contains(&c));
        }
    }
}
