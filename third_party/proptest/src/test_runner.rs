//! Test configuration, the per-case RNG, and the case-failure error type.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// The generator driving value production for one test case.
///
/// Seeding is a pure function of (test path, case index): a failing case
/// number printed by the runner reproduces exactly on re-run.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    pub fn deterministic(test_path: &str, case: u64) -> TestRng {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf29ce484222325;
        for b in test_path.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// A float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform index in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// Why a test case failed; returned (via `prop_assert*`) from case bodies.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_path_and_case_same_stream() {
        let mut a = TestRng::deterministic("mod::test", 3);
        let mut b = TestRng::deterministic("mod::test", 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_cases_differ() {
        let mut a = TestRng::deterministic("mod::test", 0);
        let mut b = TestRng::deterministic("mod::test", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
