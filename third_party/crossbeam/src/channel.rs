//! MPMC channels with crossbeam-compatible types and semantics.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// Signalled when a message is pushed or an endpoint class disconnects.
    not_empty: Condvar,
    /// Signalled when a message is popped (bounded channels only, but
    /// cheap enough to signal unconditionally).
    not_full: Condvar,
    capacity: Option<usize>,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// Creates a channel of unbounded capacity.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a channel holding at most `cap` messages.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        capacity,
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// The sending half; clonable (multi-producer).
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; clonable (multi-consumer — any one receiver gets
/// each message).
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.0.senders.fetch_add(1, Ordering::AcqRel);
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.0.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake receivers so they can observe
            // disconnection once the queue drains.
            let _guard = self.0.lock();
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.0.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = self.0.lock();
            self.0.not_full.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Sender<T> {
    /// Sends, blocking while a bounded channel is full. Fails only when
    /// every receiver has been dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        let mut queue = self.0.lock();
        loop {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            match self.0.capacity {
                Some(cap) if queue.len() >= cap => {
                    // Bounded and full: wait for a pop, re-checking for
                    // disconnection at a coarse period.
                    let (g, _) = self
                        .0
                        .not_full
                        .wait_timeout(queue, Duration::from_millis(50))
                        .unwrap_or_else(|e| e.into_inner());
                    queue = g;
                }
                _ => {
                    queue.push_back(msg);
                    self.0.not_empty.notify_one();
                    return Ok(());
                }
            }
        }
    }

    /// Sends without blocking; fails with `Full` when a bounded channel is
    /// at capacity.
    pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
        let mut queue = self.0.lock();
        if self.0.receivers.load(Ordering::Acquire) == 0 {
            return Err(TrySendError::Disconnected(msg));
        }
        if let Some(cap) = self.0.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(msg));
            }
        }
        queue.push_back(msg);
        self.0.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message arrives or all senders are gone
    /// *and* the queue is empty.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.0.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .0
                .not_empty
                .wait(queue)
                .unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Receives with a deadline.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.0.lock();
        loop {
            if let Some(msg) = queue.pop_front() {
                self.0.not_full.notify_one();
                return Ok(msg);
            }
            if self.0.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(RecvTimeoutError::Timeout);
            }
            let (g, _) = self
                .0
                .not_empty
                .wait_timeout(queue, remaining)
                .unwrap_or_else(|e| e.into_inner());
            queue = g;
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.0.lock();
        if let Some(msg) = queue.pop_front() {
            self.0.not_full.notify_one();
            return Ok(msg);
        }
        if self.0.senders.load(Ordering::Acquire) == 0 {
            return Err(TryRecvError::Disconnected);
        }
        Err(TryRecvError::Empty)
    }

    /// True if no messages are currently queued.
    pub fn is_empty(&self) -> bool {
        self.0.lock().is_empty()
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.0.lock().len()
    }
}

/// Error of [`Sender::send`]: all receivers disconnected.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error of [`Sender::try_send`].
#[derive(PartialEq, Eq, Clone, Copy)]
pub enum TrySendError<T> {
    /// The (bounded) channel is at capacity.
    Full(T),
    /// All receivers disconnected.
    Disconnected(T),
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("Disconnected(..)"),
        }
    }
}

/// Error of [`Receiver::recv`]: channel empty and all senders disconnected.
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error of [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum TryRecvError {
    Empty,
    Disconnected,
}

/// Error of [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq, Clone, Copy)]
pub enum RecvTimeoutError {
    Timeout,
    Disconnected,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn unbounded_roundtrip_in_order() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn recv_drains_queue_after_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_fails_when_receivers_gone() {
        let (tx, rx) = unbounded();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
        assert_eq!(tx.try_send(8), Err(TrySendError::Disconnected(8)));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(1);
        assert_eq!(tx.try_send(1), Ok(()));
        assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(tx.try_send(3), Ok(()));
    }

    #[test]
    fn recv_timeout_expires_then_delivers() {
        let (tx, rx) = unbounded();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(30)), Ok(9));
    }

    #[test]
    fn cloned_receivers_split_the_stream() {
        let (tx, rx1) = unbounded();
        let rx2 = rx1.clone();
        let h1 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx1.recv() {
                got.push(v);
            }
            got
        });
        let h2 = thread::spawn(move || {
            let mut got = Vec::new();
            while let Ok(v) = rx2.recv() {
                got.push(v);
            }
            got
        });
        for i in 0..200 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all = h1.join().unwrap();
        all.extend(h2.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<_>>());
    }

    #[test]
    fn blocking_send_waits_for_room() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let h = thread::spawn(move || tx.send(2));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(h.join().unwrap(), Ok(()));
        assert_eq!(rx.recv(), Ok(2));
    }
}
