//! Vendored subset of the `crossbeam` API: the `channel` module.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. It provides multi-producer
//! *multi-consumer* channels (std's mpsc receiver is single-consumer, so
//! the queue is built directly on a mutex + condvars) with crossbeam's
//! disconnect semantics: a receive drains queued messages before reporting
//! disconnection, and a send fails once every receiver is gone.

pub mod channel;
