//! Vendored subset of the `polling` crate API.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. It exposes the portable
//! readiness abstraction the reactor needs:
//!
//! * [`Poller`] — registers raw file descriptors for readiness interest and
//!   blocks in `wait` until one becomes ready or [`Poller::notify`] is
//!   called from another thread. Like the real crate, interests are
//!   **oneshot**: a delivered event disarms the source until re-armed with
//!   [`Poller::modify`].
//! * [`Event`] / [`Events`] — an interest/readiness record (key plus
//!   readable/writable flags) and the reusable buffer `wait` fills.
//!
//! On Linux this is epoll (`EPOLLONESHOT`) plus an `eventfd` notifier —
//! the same backend the real crate selects there. Other platforms get a
//! stub whose `Poller::new` fails with `ErrorKind::Unsupported`, which
//! callers treat as "no reactor here, fall back to blocking I/O".
//!
//! All `unsafe` in the workspace's transport stack is confined to the FFI
//! in this crate; the syscall wrappers keep the invariants trivial (no
//! borrowed memory outlives a call, fds are owned and closed exactly once
//! in `Drop`).

/// Interest in, or readiness of, one registered source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier reported back with readiness.
    pub key: usize,
    /// Interested in (or ready for) reading.
    pub readable: bool,
    /// Interested in (or ready for) writing.
    pub writable: bool,
}

impl Event {
    /// Interest in readability only.
    pub fn readable(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in writability only.
    pub fn writable(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both directions.
    pub fn all(key: usize) -> Event {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest (leaves the source registered but disarmed).
    pub fn none(key: usize) -> Event {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }
}

/// A reusable buffer of readiness events filled by [`Poller::wait`].
#[derive(Debug, Default)]
pub struct Events {
    items: Vec<Event>,
}

impl Events {
    /// Creates an empty buffer.
    pub fn new() -> Events {
        Events::default()
    }

    /// Number of events from the last `wait`.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the last `wait` returned no events.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Iterates over the events of the last `wait`.
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.items.iter().copied()
    }

    /// Clears the buffer (call before reusing it).
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

pub use sys::Poller;

#[cfg(target_os = "linux")]
mod sys {
    #![allow(unsafe_code)]

    use super::{Event, Events};
    use std::io;
    use std::os::raw::{c_int, c_void};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::time::Duration;

    // Kernel ABI: on x86 the epoll_event struct is packed; elsewhere it is
    // naturally aligned. Mirrors the libc definitions.
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(C, packed))]
    #[cfg_attr(not(any(target_arch = "x86", target_arch = "x86_64")), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLONESHOT: u32 = 1 << 30;
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o4000;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: u32, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// The key `wait` reserves for the internal notifier; user keys must
    /// stay below it (the reactor allocates small integers, so this is
    /// never a practical restriction).
    const NOTIFY_KEY: u64 = u64::MAX;

    /// Largest number of events one `wait` call collects.
    const WAIT_BATCH: usize = 1024;

    /// An epoll instance with oneshot interests and an eventfd notifier.
    #[derive(Debug)]
    pub struct Poller {
        epfd: c_int,
        notify_fd: c_int,
        /// Collapses concurrent `notify` calls into one eventfd write
        /// until the wake-up is consumed.
        notified: AtomicBool,
    }

    impl Poller {
        /// Creates a poller.
        pub fn new() -> io::Result<Poller> {
            // Safety: plain syscalls; returned fds are owned by the
            // Poller and closed in Drop.
            let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            let notify_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
                Ok(fd) => fd,
                Err(e) => {
                    unsafe { close(epfd) };
                    return Err(e);
                }
            };
            let poller = Poller {
                epfd,
                notify_fd,
                notified: AtomicBool::new(false),
            };
            // The notifier is level-triggered and permanent (not oneshot):
            // a pending notification must survive until drained.
            let mut ev = EpollEvent {
                events: EPOLLIN,
                data: NOTIFY_KEY,
            };
            cvt(unsafe { epoll_ctl(poller.epfd, EPOLL_CTL_ADD, poller.notify_fd, &mut ev) })?;
            Ok(poller)
        }

        fn interest_bits(ev: Event) -> u32 {
            let mut bits = EPOLLONESHOT;
            if ev.readable {
                bits |= EPOLLIN | EPOLLRDHUP;
            }
            if ev.writable {
                bits |= EPOLLOUT;
            }
            bits
        }

        /// Registers `fd` with an initial oneshot interest.
        pub fn add(&self, fd: i32, ev: Event) -> io::Result<()> {
            let mut native = EpollEvent {
                events: Self::interest_bits(ev),
                data: ev.key as u64,
            };
            // Safety: the event struct lives across the call only.
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut native) })?;
            Ok(())
        }

        /// Re-arms (or changes) the oneshot interest of a registered fd.
        pub fn modify(&self, fd: i32, ev: Event) -> io::Result<()> {
            let mut native = EpollEvent {
                events: Self::interest_bits(ev),
                data: ev.key as u64,
            };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_MOD, fd, &mut native) })?;
            Ok(())
        }

        /// Removes a registered fd.
        pub fn delete(&self, fd: i32) -> io::Result<()> {
            let mut native = EpollEvent { events: 0, data: 0 };
            cvt(unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut native) })?;
            Ok(())
        }

        /// Blocks until at least one source is ready, `timeout` elapses, or
        /// [`Poller::notify`] is called; appends readiness records to
        /// `events` and returns how many were added. A notification alone
        /// produces zero events.
        pub fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
            let timeout_ms: c_int = match timeout {
                // Round up so a 100µs timeout does not busy-spin at 0ms.
                Some(d) => d
                    .as_millis()
                    .saturating_add(u128::from(d.subsec_micros() % 1000 != 0))
                    .min(c_int::MAX as u128) as c_int,
                None => -1,
            };
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let n = loop {
                // Safety: buf outlives the call; kernel writes at most
                // WAIT_BATCH entries.
                match cvt(unsafe {
                    epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms)
                }) {
                    Ok(n) => break n as usize,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(e) => return Err(e),
                }
            };
            let mut added = 0;
            for native in &buf[..n] {
                let data = native.data;
                let bits = native.events;
                if data == NOTIFY_KEY {
                    self.drain_notify();
                    continue;
                }
                events.items.push(Event {
                    key: data as usize,
                    // Errors and hang-ups surface as both-ready so the
                    // caller's next read/write observes the failure.
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
                });
                added += 1;
            }
            Ok(added)
        }

        /// Wakes a concurrent (or the next) `wait` call.
        pub fn notify(&self) -> io::Result<()> {
            if self.notified.swap(true, Ordering::AcqRel) {
                return Ok(()); // a wake-up is already pending
            }
            let one: u64 = 1;
            // Safety: writes 8 owned bytes to an owned eventfd.
            let n = unsafe { write(self.notify_fd, (&one as *const u64).cast(), 8) };
            if n < 0 {
                let e = io::Error::last_os_error();
                // A full counter still wakes the waiter; not an error.
                if e.kind() != io::ErrorKind::WouldBlock {
                    return Err(e);
                }
            }
            Ok(())
        }

        fn drain_notify(&self) {
            let mut buf = 0u64;
            // Clear the pending flag before draining: a notify arriving
            // after the drain must trigger a fresh eventfd write.
            self.notified.store(false, Ordering::Release);
            // Safety: reads 8 bytes into an owned buffer from an owned fd.
            unsafe { read(self.notify_fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // Safety: fds are owned and not used after this point.
            unsafe {
                close(self.notify_fd);
                close(self.epfd);
            }
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    use super::{Event, Events};
    use std::io;
    use std::time::Duration;

    /// Stub poller for platforms without the epoll backend: construction
    /// fails and callers fall back to blocking I/O.
    #[derive(Debug)]
    pub struct Poller {
        _private: (),
    }

    impl Poller {
        /// Always fails on this platform.
        pub fn new() -> io::Result<Poller> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "readiness polling is unavailable on this platform",
            ))
        }

        /// Unreachable (no instance can exist).
        pub fn add(&self, _fd: i32, _ev: Event) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn modify(&self, _fd: i32, _ev: Event) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn wait(&self, _events: &mut Events, _t: Option<Duration>) -> io::Result<usize> {
            unreachable!("stub poller cannot be constructed")
        }

        /// Unreachable (no instance can exist).
        pub fn notify(&self) -> io::Result<()> {
            unreachable!("stub poller cannot be constructed")
        }
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::fd::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::{Duration, Instant};

    fn pair() -> (UnixStream, UnixStream) {
        let (a, b) = UnixStream::pair().unwrap();
        a.set_nonblocking(true).unwrap();
        b.set_nonblocking(true).unwrap();
        (a, b)
    }

    #[test]
    fn readiness_is_reported_with_key() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), Event::readable(7)).unwrap();
        let mut events = Events::new();
        // Nothing to read yet: times out with no events.
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(10)))
            .unwrap();
        assert_eq!(n, 0);
        b.write_all(b"x").unwrap();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        let ev = events.iter().next().unwrap();
        assert_eq!(ev.key, 7);
        assert!(ev.readable);
    }

    #[test]
    fn oneshot_requires_rearm() {
        let poller = Poller::new().unwrap();
        let (mut a, mut b) = pair();
        poller.add(a.as_raw_fd(), Event::readable(1)).unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Events::new();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap(),
            1
        );
        // Without a rearm the (still readable) source stays silent.
        events.clear();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
        // Rearm: the unread byte triggers again (level semantics).
        poller.modify(a.as_raw_fd(), Event::readable(1)).unwrap();
        events.clear();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_secs(2)))
                .unwrap(),
            1
        );
        let mut buf = [0u8; 8];
        let _ = a.read(&mut buf);
    }

    #[test]
    fn notify_wakes_wait_without_events() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p = std::sync::Arc::clone(&poller);
        let h = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(50));
            p.notify().unwrap();
        });
        let mut events = Events::new();
        let t0 = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(t0.elapsed() < Duration::from_secs(5), "notify did not wake");
        h.join().unwrap();
        // The notification was drained: the next wait times out normally.
        let t0 = Instant::now();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn delete_stops_events() {
        let poller = Poller::new().unwrap();
        let (a, mut b) = pair();
        poller.add(a.as_raw_fd(), Event::readable(3)).unwrap();
        poller.delete(a.as_raw_fd()).unwrap();
        b.write_all(b"x").unwrap();
        let mut events = Events::new();
        assert_eq!(
            poller
                .wait(&mut events, Some(Duration::from_millis(20)))
                .unwrap(),
            0
        );
    }

    #[test]
    fn writable_interest_fires() {
        let poller = Poller::new().unwrap();
        let (a, _b) = pair();
        poller.add(a.as_raw_fd(), Event::all(9)).unwrap();
        let mut events = Events::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(2)))
            .unwrap();
        assert_eq!(n, 1);
        assert!(events.iter().next().unwrap().writable);
    }
}
