//! Vendored subset of the `parking_lot` API, backed by `std::sync`.
//!
//! The workspace builds in environments with no registry access, so the
//! external synchronization crate is replaced by this shim. It keeps the
//! parking_lot surface the runtime uses — `Mutex`/`RwLock` without
//! poisoning, and a `Condvar` whose wait methods take the guard by `&mut`
//! — and maps it onto the standard library primitives. A poisoned std
//! lock (a thread panicked while holding it) is treated as parking_lot
//! treats it: the lock is still usable and the data is handed out.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync as ss;
use std::time::{Duration, Instant};

/// A mutual-exclusion primitive, parking_lot flavoured: `lock` never
/// returns a `Result` and the mutex cannot be poisoned.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: ss::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: ss::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            // The Option exists so Condvar::wait can take the std guard by
            // value and put the re-acquired one back; it is None only for
            // the instants inside those calls.
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(ss::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(ss::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<ss::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Display> fmt::Display for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&**self, f)
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable whose wait methods take the parking_lot-style
/// `&mut MutexGuard` instead of consuming and returning the guard.
#[derive(Default)]
pub struct Condvar {
    inner: ss::Condvar,
}

impl Condvar {
    pub fn new() -> Condvar {
        Condvar::default()
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => e.into_inner(),
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        if timeout.is_zero() {
            return WaitTimeoutResult(true);
        }
        self.wait_for(guard, timeout)
    }
}

/// A reader-writer lock without poisoning, as in parking_lot.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: ss::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: ss::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: ss::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: ss::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(20));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        thread::sleep(Duration::from_millis(10));
        *pair.0.lock() = true;
        pair.1.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = RwLock::new(5);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(*a + *b, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn wait_until_past_deadline_times_out_immediately() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_until(&mut g, Instant::now() - Duration::from_secs(1));
        assert!(res.timed_out());
    }
}
