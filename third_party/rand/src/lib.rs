//! Vendored subset of the `rand` 0.8 API.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. It keeps the call surface the
//! runtime and models use — `SmallRng::seed_from_u64`, `Rng::{gen,
//! gen_bool, gen_range}`, `SliceRandom::{choose, shuffle}` and
//! `rand::random` — over a small deterministic generator. Streams are
//! *not* bit-compatible with upstream rand; everything seeded in this
//! repository only relies on determinism for a fixed seed, not on a
//! particular stream.

use std::ops::Range;

pub mod rngs {
    /// A small, fast, deterministic generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }

    impl crate::RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64: full 2^64 period, passes standard statistical
            // batteries; plenty for fault schedules and model walks.
            self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
    }

    impl crate::SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> SmallRng {
            SmallRng { state: seed }
        }
    }
}

/// The raw-output side of a generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from its "standard" distribution
    /// (uniform over the type; `[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns true with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        f64::sample(self) < p
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! standard_ints {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

standard_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore>(rng: &mut R) -> u128 {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample<R: RngCore>(rng: &mut R) -> i128 {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    type Output;
    fn sample<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

macro_rules! sample_uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is at most span / 2^64 — irrelevant for the
                // simulation and model workloads this backs.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

sample_uint_range!(u8, u16, u32, u64, usize);

macro_rules! sample_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

sample_int_range!(i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection from slices.
    pub trait SliceRandom {
        type Item;
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..i + 1));
            }
        }
    }
}

/// Samples a value from fresh per-call entropy (time + thread + counter).
pub fn random<T: Standard>() -> T {
    use std::cell::Cell;
    use std::time::{SystemTime, UNIX_EPOCH};

    thread_local! {
        static STATE: Cell<u64> = const { Cell::new(0) };
    }
    STATE.with(|s| {
        let mut state = s.get();
        if state == 0 {
            let nanos = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9e3779b97f4a7c15);
            // Mix in the thread id so simultaneously started threads don't
            // collide on the clock.
            let tid = &state as *const _ as u64;
            state = nanos ^ tid.rotate_left(32) | 1;
        }
        let mut rng = rngs::SmallRng { state };
        let value = T::sample(&mut rng);
        s.set(rng.state);
        value
    })
}

pub mod prelude {
    pub use crate::rngs::SmallRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{random, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "hits={hits}");
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = SmallRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let items = [1, 2, 3, 4];
        for _ in 0..50 {
            assert!(items.as_slice().choose(&mut rng).is_some());
        }
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.as_mut_slice().shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig);
        assert_ne!(v, orig, "shuffle of 100 elements left them in place");
    }

    #[test]
    fn random_produces_fresh_values() {
        let a: u64 = super::random();
        let b: u64 = super::random();
        assert_ne!(a, b);
    }
}
