//! Vendored subset of the `criterion` API.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. Bench sources compile and run
//! unchanged; instead of criterion's statistical machinery, each benchmark
//! is timed with a simple warmup + measured-batch loop and reported as one
//! plain-text line (mean ns/iter plus derived throughput when configured).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            _criterion: self,
            name,
            measurement_time: Duration::from_secs(1),
            sample_size: 10,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(id, &mut f);
        g.finish();
        self
    }
}

/// Units for derived-throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A named group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    measurement_time: Duration,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.0, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run(&mut self, id: String, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            // Cap the per-benchmark budget so full bench binaries stay
            // quick; criterion's defaults assume minutes of runtime.
            budget: self.measurement_time.min(Duration::from_millis(500)),
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) if mean_ns > 0.0 => {
                format!(
                    "  ({:.1} MiB/s)",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                format!("  ({:.0} elem/s)", n as f64 / mean_ns * 1e9)
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: {mean_ns:.0} ns/iter ({} iters){rate}",
            self.name, b.iters
        );
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{parameter}", name.into()))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times repeated calls of `routine` until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: one untimed call (page in code, fill caches).
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.total += t0.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Gives the routine an iteration count and trusts its own timing —
    /// used when per-iteration setup must be excluded.
    pub fn iter_custom<R: FnMut(u64) -> Duration>(&mut self, mut routine: R) {
        let iters = 10u64;
        self.total += routine(iters);
        self.iters += iters;
    }
}

/// Expands to a function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("test");
        g.sample_size(5).measurement_time(Duration::from_millis(10));
        let mut runs = 0u64;
        g.bench_function("count", |b| b.iter(|| runs += 1));
        g.finish();
        assert!(runs > 1);
    }

    #[test]
    fn iter_custom_accumulates() {
        let mut b = Bencher {
            budget: Duration::from_millis(10),
            total: Duration::ZERO,
            iters: 0,
        };
        b.iter_custom(|iters| Duration::from_nanos(iters * 100));
        assert_eq!(b.iters, 10);
        assert_eq!(b.total, Duration::from_nanos(1000));
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("send", 4096).0, "send/4096");
        assert_eq!(BenchmarkId::from_parameter(8).0, "8");
    }
}
