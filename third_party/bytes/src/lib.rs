//! Vendored subset of the `bytes` crate API.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. Two types:
//!
//! * [`BytesMut`] — a growable buffer readable from the front and writable
//!   at the back. Backed by an `Arc<Vec<u8>>` so frames split off with
//!   [`BytesMut::split_to_bytes`] share the allocation instead of copying;
//!   mutation is copy-on-write (only the live suffix is moved when a split
//!   slice is still alive, which on the decode path is almost always empty).
//! * [`Bytes`] — a cheaply cloneable immutable view into shared storage.
//!   `clone`/`slice`/`split_to` are O(1) refcount/offset operations.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A growable byte buffer readable from the front and writable at the back.
#[derive(Default, Clone)]
pub struct BytesMut {
    data: Arc<Vec<u8>>,
    /// Bytes before this offset have been consumed by `advance`/`split_to`.
    start: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Arc::new(Vec::with_capacity(cap)),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn reserve(&mut self, additional: usize) {
        self.make_mut().reserve(additional);
    }

    pub fn clear(&mut self) {
        if let Some(v) = Arc::get_mut(&mut self.data) {
            v.clear();
        } else {
            // A frozen slice still references the storage: start over.
            self.data = Arc::new(Vec::new());
        }
        self.start = 0;
    }

    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.make_mut().extend_from_slice(bytes);
    }

    /// Splits off and returns the first `n` readable bytes as an owned
    /// buffer (copies; prefer [`BytesMut::split_to_bytes`] on hot paths).
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of range");
        let front = self.data[self.start..self.start + n].to_vec();
        self.advance(n);
        BytesMut {
            data: Arc::new(front),
            start: 0,
        }
    }

    /// Splits off the first `n` readable bytes as a shared [`Bytes`] view
    /// of the same allocation — no copy. Subsequent appends to `self`
    /// copy-on-write only the remaining live suffix.
    pub fn split_to_bytes(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to_bytes out of range");
        let b = Bytes {
            data: Arc::clone(&self.data),
            start: self.start,
            end: self.start + n,
        };
        self.start += n;
        b
    }

    /// Converts the whole readable region into a shared [`Bytes`] without
    /// copying.
    pub fn freeze(self) -> Bytes {
        let end = self.data.len();
        Bytes {
            data: self.data,
            start: self.start,
            end,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.start..].to_vec()
    }

    /// Unique, compacted access to the backing vector.
    fn make_mut(&mut self) -> &mut Vec<u8> {
        if Arc::get_mut(&mut self.data).is_none() {
            // A split-off Bytes still references the storage; move the live
            // suffix into a fresh buffer (usually empty on decode paths).
            let live = self.data[self.start..].to_vec();
            self.data = Arc::new(live);
            self.start = 0;
        } else if self.start > 4096 && self.start >= self.data.len() - self.start {
            // Reclaim the consumed prefix once it outweighs the live bytes,
            // so a long-lived decode buffer doesn't grow without bound.
            let v = Arc::get_mut(&mut self.data).expect("unique");
            v.drain(..self.start);
            self.start = 0;
        }
        Arc::get_mut(&mut self.data).expect("unique after make_mut")
    }
}

impl PartialEq for BytesMut {
    fn eq(&self, other: &BytesMut) -> bool {
        self[..] == other[..]
    }
}

impl Eq for BytesMut {}

/// A cheaply cloneable, immutable view into shared byte storage.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty slice.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Copies a slice into fresh shared storage.
    pub fn copy_from_slice(bytes: &[u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-view of this slice; O(1), shares the storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Returns a shared view corresponding to `sub`, which must be a
    /// sub-slice of `self` (e.g. one handed out by a borrowing decoder).
    /// O(1): offsets are recovered by pointer arithmetic, no copy.
    pub fn slice_ref(&self, sub: &[u8]) -> Bytes {
        if sub.is_empty() {
            return Bytes::new();
        }
        let base = self.as_ptr() as usize;
        let p = sub.as_ptr() as usize;
        assert!(
            p >= base && p + sub.len() <= base + self.len(),
            "slice_ref: not a sub-slice"
        );
        let lo = p - base;
        self.slice(lo..lo + sub.len())
    }

    /// Splits off and returns the first `n` bytes; O(1).
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let front = self.slice(..n);
        self.start += n;
        front
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }

    /// Recovers the backing vector if this is the only reference to it
    /// (regardless of the view's range) — used to recycle send buffers.
    /// Returns `Err(self)` when the storage is still shared.
    pub fn try_reclaim(self) -> Result<Vec<u8>, Bytes> {
        match Arc::try_unwrap(self.data) {
            Ok(v) => Ok(v),
            Err(data) => Err(Bytes {
                data,
                start: self.start,
                end: self.end,
            }),
        }
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<BytesMut> for Bytes {
    fn from(b: BytesMut) -> Bytes {
        b.freeze()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        &self[..] == *other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        self[..] == other[..]
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self[..].hash(state);
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    fn advance(&mut self, n: usize);
    fn remaining(&self) -> usize;
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
        if Arc::get_mut(&mut self.data).is_some()
            && self.start > 4096
            && self.start >= self.data.len() - self.start
        {
            let v = Arc::get_mut(&mut self.data).expect("unique");
            v.drain(..self.start);
            self.start = 0;
        }
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

impl Buf for Bytes {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, bytes: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        let start = self.start;
        let v = self.make_mut();
        &mut v[start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_slice(b"abc");
        assert_eq!(b.len(), 7);
        assert_eq!(&b[..4], 7u32.to_le_bytes());
        assert_eq!(&b[4..], b"abc");
    }

    #[test]
    fn advance_then_split_to() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"0123456789");
        b.advance(4);
        assert_eq!(&*b, b"456789");
        let front = b.split_to(2);
        assert_eq!(front.to_vec(), b"45");
        assert_eq!(&*b, b"6789");
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        let chunk = [0xabu8; 1024];
        for _ in 0..16 {
            b.extend_from_slice(&chunk);
        }
        b.advance(9 * 1024);
        assert_eq!(b.len(), 7 * 1024);
        assert!(b.iter().all(|&x| x == 0xab));
    }

    #[test]
    #[should_panic(expected = "advance out of range")]
    fn advance_past_end_panics() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"xy");
        b.advance(3);
    }

    #[test]
    fn split_to_bytes_shares_storage() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"headpayload");
        let head = b.split_to_bytes(4);
        assert_eq!(&head[..], b"head");
        assert_eq!(&*b, b"payload");
        // Appending while `head` is alive must not disturb it.
        b.extend_from_slice(b"-more");
        assert_eq!(&head[..], b"head");
        assert_eq!(&*b, b"payload-more");
    }

    #[test]
    fn freeze_and_slice() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"abcdef");
        b.advance(1);
        let f = b.freeze();
        assert_eq!(&f[..], b"bcdef");
        let mid = f.slice(1..3);
        assert_eq!(&mid[..], b"cd");
        let again = mid.clone();
        assert_eq!(again, mid);
    }

    #[test]
    fn slice_ref_recovers_offsets() {
        let whole = Bytes::from(b"0123456789".to_vec());
        let sub = &whole[3..7];
        let shared = whole.slice_ref(sub);
        assert_eq!(&shared[..], b"3456");
        assert_eq!(whole.slice_ref(&whole[0..0]).len(), 0);
    }

    #[test]
    #[should_panic(expected = "not a sub-slice")]
    fn slice_ref_foreign_slice_panics() {
        let whole = Bytes::from(b"abc".to_vec());
        let other = [1u8, 2, 3];
        let _ = whole.slice_ref(&other);
    }

    #[test]
    fn bytes_split_to_advances() {
        let mut b = Bytes::from(b"xxyyzz".to_vec());
        let front = b.split_to(2);
        assert_eq!(&front[..], b"xx");
        assert_eq!(&b[..], b"yyzz");
    }

    #[test]
    fn try_reclaim_unique_returns_vec() {
        let b = Bytes::from(vec![1, 2, 3]);
        let v = b.try_reclaim().expect("unique");
        assert_eq!(v, vec![1, 2, 3]);

        let b = Bytes::from(vec![4, 5]);
        let keep = b.clone();
        let back = b.try_reclaim().expect_err("shared");
        assert_eq!(back, keep);
    }

    #[test]
    fn clear_with_live_slice_restarts() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"frame");
        let f = b.split_to_bytes(5);
        b.extend_from_slice(b"next");
        b.clear();
        assert!(b.is_empty());
        b.extend_from_slice(b"fresh");
        assert_eq!(&f[..], b"frame");
        assert_eq!(&*b, b"fresh");
    }
}
