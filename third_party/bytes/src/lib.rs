//! Vendored subset of the `bytes` crate API.
//!
//! The workspace builds in environments with no registry access, so the
//! external crate is replaced by this shim. `BytesMut` here is a plain
//! `Vec<u8>` plus a consumed-prefix offset: `advance`/`split_to` move the
//! offset instead of memmoving, and the buffer compacts once the dead
//! prefix dominates. No shared-slab refcounting — none of the wire code
//! relies on it.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A growable byte buffer readable from the front and writable at the back.
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
    /// Bytes before this offset have been consumed by `advance`/`split_to`.
    start: usize,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            data: Vec::with_capacity(cap),
            start: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }

    pub fn clear(&mut self) {
        self.data.clear();
        self.start = 0;
    }

    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Splits off and returns the first `n` readable bytes.
    pub fn split_to(&mut self, n: usize) -> BytesMut {
        assert!(n <= self.len(), "split_to out of range");
        let front = self.data[self.start..self.start + n].to_vec();
        self.start += n;
        self.maybe_compact();
        BytesMut {
            data: front,
            start: 0,
        }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.start..].to_vec()
    }

    fn maybe_compact(&mut self) {
        // Reclaim the consumed prefix once it outweighs the live bytes, so
        // a long-lived decode buffer doesn't grow without bound.
        if self.start > 4096 && self.start >= self.data.len() - self.start {
            self.data.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Read-side cursor operations (subset of `bytes::Buf`).
pub trait Buf {
    fn advance(&mut self, n: usize);
    fn remaining(&self) -> usize;
}

impl Buf for BytesMut {
    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance out of range");
        self.start += n;
        self.maybe_compact();
    }

    fn remaining(&self) -> usize {
        self.len()
    }
}

/// Write-side append operations (subset of `bytes::BufMut`).
pub trait BufMut {
    fn put_slice(&mut self, bytes: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, bytes: &[u8]) {
        self.extend_from_slice(bytes);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..]
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data[self.start..]
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_and_read_back() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32_le(7);
        b.put_slice(b"abc");
        assert_eq!(b.len(), 7);
        assert_eq!(&b[..4], 7u32.to_le_bytes());
        assert_eq!(&b[4..], b"abc");
    }

    #[test]
    fn advance_then_split_to() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"0123456789");
        b.advance(4);
        assert_eq!(&*b, b"456789");
        let front = b.split_to(2);
        assert_eq!(front.to_vec(), b"45");
        assert_eq!(&*b, b"6789");
    }

    #[test]
    fn compaction_keeps_contents() {
        let mut b = BytesMut::new();
        let chunk = [0xabu8; 1024];
        for _ in 0..16 {
            b.extend_from_slice(&chunk);
        }
        b.advance(9 * 1024);
        assert_eq!(b.len(), 7 * 1024);
        assert!(b.iter().all(|&x| x == 0xab));
    }

    #[test]
    #[should_panic(expected = "advance out of range")]
    fn advance_past_end_panics() {
        let mut b = BytesMut::new();
        b.extend_from_slice(b"xy");
        b.advance(3);
    }
}
