//! Failure-path integration tests: lossy links, partitions, crashed
//! clients and dead owners — the Section-2.3/2.4 behaviours of the
//! original system (sequence numbers, strong cleans, clean retry, ping
//! and lease termination detection).
//!
//! Every scenario runs on a virtual clock (timeouts, retries and leases
//! all tick in simulated time) and ends by replaying the captured
//! collector traces through the formal model.

#[path = "vt_util.rs"]
mod vt_util;

use std::sync::Arc;
use std::time::Duration;

use netobj::transport::sim::{LinkConfig, SimNet};
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, Error, NetResult, Options};
use parking_lot::Mutex;
use vt_util::{assert_conformant, assert_sim_time_under, pass_time, space_on, wait_until};

network_object! {
    /// Minimal service for fault scenarios.
    pub interface Cell ("ft.Cell"): client CellClient, export CellExport {
        0 => fn bump(&self) -> i64;
    }
}

struct CellImpl(Mutex<i64>);

impl Cell for CellImpl {
    fn bump(&self) -> NetResult<i64> {
        let mut v = self.0.lock();
        *v += 1;
        Ok(*v)
    }
}

fn cell() -> Arc<CellExport<CellImpl>> {
    Arc::new(CellExport(Arc::new(CellImpl(Mutex::new(0)))))
}

network_object! {
    /// Hands a cell reference to whoever asks (used to trigger the
    /// unmarshal-time dirty call without a bootstrap identify).
    pub interface Giver ("ft.Giver"): client GiverClient, export GiverExport {
        0 => fn give(&self) -> CellClient;
    }
}

struct GiverImpl(Mutex<Option<CellClient>>);

impl Giver for GiverImpl {
    fn give(&self) -> NetResult<CellClient> {
        Ok(self.0.lock().clone().expect("wired"))
    }
}

#[test]
fn failed_dirty_creates_no_surrogate_and_sends_strong_clean() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 1);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.dirty_timeout = Duration::from_millis(300);
    opts.clean_timeout = Duration::from_millis(300);
    opts.clean_retry = Duration::from_millis(100);
    opts.max_clean_retries = 50;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();

    // A helper space holds the cell and re-serves it through a Giver.
    let helper = space_on(&net, "helper", opts.clone());
    let held = CellClient::narrow(
        helper
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    helper
        .export(Arc::new(GiverExport(Arc::new(GiverImpl(Mutex::new(
            Some(held),
        ))))))
        .unwrap();

    // The client warms a connection to the owner (so the dirty call will
    // be *sent* into the partition and time out ambiguously, rather than
    // failing fast at connect).
    let client = space_on(&net, "client", opts);
    let warm = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    drop(warm);
    wait_until(&clock, "warm-up clean done", || {
        client.imported_count() == 0
    });
    let cleans_before = owner.stats().clean_received;

    let giver = GiverClient::narrow(
        client
            .import_root(&Endpoint::sim("helper"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();

    // Partition the owner: the dirty call triggered by unmarshaling the
    // result of give() times out — an *ambiguous* failure.
    net.set_down("owner", true);
    let got = giver.give();
    assert!(got.is_err(), "{got:?}");
    assert_eq!(
        client.imported_count(),
        1,
        "only the giver surrogate may remain: no cell surrogate after a \
         failed dirty call"
    );
    wait_until(&clock, "strong clean scheduled and attempted", || {
        client.stats().strong_clean_sent >= 1
    });

    // Heal the partition: the strong clean must eventually land.
    net.set_down("owner", false);
    wait_until(&clock, "strong clean delivered", || {
        owner.stats().clean_received > cleans_before
    });

    // The reference is importable and usable again afterwards.
    let c = giver.give().unwrap();
    assert_eq!(c.bump().unwrap(), 1);

    assert_conformant("failed_dirty", &[&owner, &helper, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "failed_dirty");
}

#[test]
fn clean_calls_retry_through_partitions() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 2);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.clean_timeout = Duration::from_millis(200);
    opts.clean_retry = Duration::from_millis(100);
    opts.max_clean_retries = 20;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);

    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    // Cut the link, then drop: the clean call fails and must be retried
    // with the same sequence number until the partition heals.
    net.set_down("owner", true);
    drop(h);
    pass_time(&clock, Duration::from_millis(600));
    assert!(client.stats().clean_retries >= 1, "retries while down");
    assert_eq!(owner.stats().clean_received, 0);

    net.set_down("owner", false);
    wait_until(&clock, "clean finally lands", || {
        owner.stats().clean_received == 1
    });
    wait_until(&clock, "slot reclaimed", || client.imported_count() == 0);

    assert_conformant("clean_retry", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "clean_retry");
}

#[test]
fn duplicated_collector_messages_are_harmless() {
    // Sequence numbers make duplicated dirty/clean calls no-ops: with a
    // duplicating link, counts stay consistent and collection works.
    let mut config = LinkConfig::with_latency(Duration::from_micros(200));
    config.duplicate = 0.5;
    let net = SimNet::virtual_time(config, 99);
    let clock = net.clock();
    let opts = Options::fast();
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);

    for round in 0..10 {
        let h = client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap();
        let c = CellClient::narrow(h).unwrap();
        assert_eq!(c.bump().unwrap(), round + 1);
        drop(c);
        wait_until(&clock, "round cleaned", || client.imported_count() == 0);
    }
    // The object survived every round and was never prematurely lost.
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    assert_eq!(CellClient::narrow(h).unwrap().bump().unwrap(), 11);

    assert_conformant("duplicated_messages", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "duplicated_messages");
}

#[test]
fn owner_death_abandons_surrogates_after_retries() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 4);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.clean_timeout = Duration::from_millis(150);
    opts.clean_retry = Duration::from_millis(50);
    opts.max_clean_retries = 3;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);

    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    // The owner dies for good.
    owner.crash();
    net.set_down("owner", true);
    drop(h);
    // After max_clean_retries failures the client gives up and reclaims
    // its local bookkeeping ("until the owner's termination is detected").
    wait_until(&clock, "import slot abandoned", || {
        client.imported_count() == 0
    });
    assert!(client.stats().clean_retries >= 2);

    assert_conformant("owner_death", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "owner_death");
}

#[test]
fn calls_to_dead_owner_fail_with_transport_errors() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 6);
    let clock = net.clock();
    let opts = Options::fast();
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);
    let c = CellClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(c.bump().unwrap(), 1);
    owner.crash();
    net.set_down("owner", true);
    let got = c.bump();
    assert!(
        matches!(got, Err(Error::Rpc(_)) | Err(Error::Transport(_))),
        "{got:?}"
    );

    assert_conformant("dead_owner_calls", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "dead_owner_calls");
}

#[test]
fn lease_mode_survives_transient_partition_within_lease() {
    // A partition shorter than the lease must NOT cost the client its
    // reference: renewals resume after healing.
    let net = SimNet::virtual_time(LinkConfig::instant(), 8);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.lease = Some(Duration::from_millis(1200));
    // A renewal into the partition must fail fast enough for the next
    // renewal round to land within the lease.
    opts.dirty_timeout = Duration::from_millis(150);
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);
    let c = CellClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(c.bump().unwrap(), 1);

    net.set_down("owner", true);
    pass_time(&clock, Duration::from_millis(400)); // < lease
    net.set_down("owner", false);
    pass_time(&clock, Duration::from_millis(900)); // renewals resume

    assert_eq!(c.bump().unwrap(), 2, "reference survived the partition");
    assert_eq!(owner.stats().leases_expired, 0);

    assert_conformant("lease_partition", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "lease_partition");
}
