//! Failure-path integration tests: lossy links, partitions, crashed
//! clients and dead owners — the Section-2.3/2.4 behaviours of the
//! original system (sequence numbers, strong cleans, clean retry, ping
//! and lease termination detection).

use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::transport::sim::{LinkConfig, SimNet};
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, Error, NetResult, Options, Space};
use parking_lot::Mutex;

network_object! {
    /// Minimal service for fault scenarios.
    pub interface Cell ("ft.Cell"): client CellClient, export CellExport {
        0 => fn bump(&self) -> i64;
    }
}

struct CellImpl(Mutex<i64>);

impl Cell for CellImpl {
    fn bump(&self) -> NetResult<i64> {
        let mut v = self.0.lock();
        *v += 1;
        Ok(*v)
    }
}

fn cell() -> Arc<CellExport<CellImpl>> {
    Arc::new(CellExport(Arc::new(CellImpl(Mutex::new(0)))))
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(20);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn space_on(net: &Arc<SimNet>, name: &str, options: Options) -> Space {
    Space::builder()
        .transport(Arc::new(Arc::clone(net)))
        .listen(Endpoint::sim(name))
        .options(options)
        .build()
        .unwrap()
}

network_object! {
    /// Hands a cell reference to whoever asks (used to trigger the
    /// unmarshal-time dirty call without a bootstrap identify).
    pub interface Giver ("ft.Giver"): client GiverClient, export GiverExport {
        0 => fn give(&self) -> CellClient;
    }
}

struct GiverImpl(Mutex<Option<CellClient>>);

impl Giver for GiverImpl {
    fn give(&self) -> NetResult<CellClient> {
        Ok(self.0.lock().clone().expect("wired"))
    }
}

#[test]
fn failed_dirty_creates_no_surrogate_and_sends_strong_clean() {
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.dirty_timeout = Duration::from_millis(300);
    opts.clean_timeout = Duration::from_millis(300);
    opts.clean_retry = Duration::from_millis(100);
    opts.max_clean_retries = 50;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();

    // A helper space holds the cell and re-serves it through a Giver.
    let helper = space_on(&net, "helper", opts.clone());
    let held = CellClient::narrow(
        helper
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    helper
        .export(Arc::new(GiverExport(Arc::new(GiverImpl(Mutex::new(
            Some(held),
        ))))))
        .unwrap();

    // The client warms a connection to the owner (so the dirty call will
    // be *sent* into the partition and time out ambiguously, rather than
    // failing fast at connect).
    let client = space_on(&net, "client", opts);
    let warm = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    drop(warm);
    wait_until("warm-up clean done", || client.imported_count() == 0);
    let cleans_before = owner.stats().clean_received;

    let giver = GiverClient::narrow(
        client
            .import_root(&Endpoint::sim("helper"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();

    // Partition the owner: the dirty call triggered by unmarshaling the
    // result of give() times out — an *ambiguous* failure.
    net.set_down("owner", true);
    let got = giver.give();
    assert!(got.is_err(), "{got:?}");
    assert_eq!(
        client.imported_count(),
        1,
        "only the giver surrogate may remain: no cell surrogate after a \
         failed dirty call"
    );
    wait_until("strong clean scheduled and attempted", || {
        client.stats().strong_clean_sent >= 1
    });

    // Heal the partition: the strong clean must eventually land.
    net.set_down("owner", false);
    wait_until("strong clean delivered", || {
        owner.stats().clean_received > cleans_before
    });

    // The reference is importable and usable again afterwards.
    let c = giver.give().unwrap();
    assert_eq!(c.bump().unwrap(), 1);
}

#[test]
fn clean_calls_retry_through_partitions() {
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.clean_timeout = Duration::from_millis(200);
    opts.clean_retry = Duration::from_millis(100);
    opts.max_clean_retries = 20;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);

    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    // Cut the link, then drop: the clean call fails and must be retried
    // with the same sequence number until the partition heals.
    net.set_down("owner", true);
    drop(h);
    std::thread::sleep(Duration::from_millis(600));
    assert!(client.stats().clean_retries >= 1, "retries while down");
    assert_eq!(owner.stats().clean_received, 0);

    net.set_down("owner", false);
    wait_until("clean finally lands", || owner.stats().clean_received == 1);
    wait_until("slot reclaimed", || client.imported_count() == 0);
}

#[test]
fn duplicated_collector_messages_are_harmless() {
    // Sequence numbers make duplicated dirty/clean calls no-ops: with a
    // duplicating link, counts stay consistent and collection works.
    let mut config = LinkConfig::with_latency(Duration::from_micros(200));
    config.duplicate = 0.5;
    let net = SimNet::with_seed(config, 99);
    let opts = Options::fast();
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);

    for round in 0..10 {
        let h = client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap();
        let c = CellClient::narrow(h).unwrap();
        assert_eq!(c.bump().unwrap(), round + 1);
        drop(c);
        wait_until("round cleaned", || client.imported_count() == 0);
    }
    // The object survived every round and was never prematurely lost.
    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    assert_eq!(CellClient::narrow(h).unwrap().bump().unwrap(), 11);
}

#[test]
fn owner_death_abandons_surrogates_after_retries() {
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.clean_timeout = Duration::from_millis(150);
    opts.clean_retry = Duration::from_millis(50);
    opts.max_clean_retries = 3;
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);

    let h = client
        .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
        .unwrap();
    // The owner dies for good.
    owner.crash();
    net.set_down("owner", true);
    drop(h);
    // After max_clean_retries failures the client gives up and reclaims
    // its local bookkeeping ("until the owner's termination is detected").
    wait_until("import slot abandoned", || client.imported_count() == 0);
    assert!(client.stats().clean_retries >= 2);
}

#[test]
fn calls_to_dead_owner_fail_with_transport_errors() {
    let net = SimNet::instant();
    let opts = Options::fast();
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);
    let c = CellClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(c.bump().unwrap(), 1);
    owner.crash();
    net.set_down("owner", true);
    let got = c.bump();
    assert!(
        matches!(got, Err(Error::Rpc(_)) | Err(Error::Transport(_))),
        "{got:?}"
    );
}

#[test]
fn lease_mode_survives_transient_partition_within_lease() {
    // A partition shorter than the lease must NOT cost the client its
    // reference: renewals resume after healing.
    let net = SimNet::instant();
    let mut opts = Options::fast();
    opts.lease = Some(Duration::from_millis(1200));
    // A renewal into the partition must fail fast enough for the next
    // renewal round to land within the lease.
    opts.dirty_timeout = Duration::from_millis(150);
    let owner = space_on(&net, "owner", opts.clone());
    owner.export(cell()).unwrap();
    let client = space_on(&net, "client", opts);
    let c = CellClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(c.bump().unwrap(), 1);

    net.set_down("owner", true);
    std::thread::sleep(Duration::from_millis(400)); // < lease
    net.set_down("owner", false);
    std::thread::sleep(Duration::from_millis(900)); // renewals resume

    assert_eq!(c.bump().unwrap(), 2, "reference survived the partition");
    assert_eq!(owner.stats().leases_expired, 0);
}
