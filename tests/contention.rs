//! Contention stress: many threads hammering one space's call path and
//! object table at once. Exercises the sharded export/import tables, the
//! per-connection reply encoder and the client demultiplexer under real
//! parallelism, while the virtual clock keeps the schedule's *timers*
//! deterministic. Every reply must reach exactly the caller that issued
//! its request (tagged payloads detect lost, duplicated or cross-wired
//! replies), and the captured collector trace must replay conformantly.

#[path = "vt_util.rs"]
mod vt_util;

use std::collections::HashSet;
use std::sync::Arc;
use std::time::Duration;

use netobj::transport::sim::{LinkConfig, SimNet};
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Options, Space};
use parking_lot::Mutex;
use vt_util::{assert_conformant, assert_sim_time_under, space_on, wait_until};

const THREADS: u64 = 16;
const CALLS_PER_THREAD: u64 = 1_000;
/// Every Nth call also marshals a fresh reference through the table, so
/// the dirty/transient shards churn alongside the echo hot path.
const MINT_EVERY: u64 = 50;

network_object! {
    /// Echo service answering with the caller's tag.
    pub interface Echo ("stress.Echo"): client EchoClient, export EchoExport {
        0 => fn echo(&self, tag: u64) -> u64;
    }
}

network_object! {
    /// A disposable object minted per-call to churn the export table.
    pub interface Token ("stress.Token"): client TokenClient, export TokenExport {
        0 => fn poke(&self) -> ();
    }
}

network_object! {
    /// Factory handing out tokens (references as results).
    pub interface Mint ("stress.Mint"): client MintClient, export MintExport {
        0 => fn make(&self) -> TokenClient;
        1 => fn echo(&self, tag: u64) -> u64;
    }
}

struct TokenImpl;
impl Token for TokenImpl {
    fn poke(&self) -> NetResult<()> {
        Ok(())
    }
}

struct MintImpl {
    space: Space,
    /// Every tag the server dispatched; duplicates mean a request was
    /// delivered (and executed) twice.
    seen: Mutex<HashSet<u64>>,
    dups: Mutex<Vec<u64>>,
}

impl Mint for MintImpl {
    fn make(&self) -> NetResult<TokenClient> {
        TokenClient::narrow(self.space.local(Arc::new(TokenExport(Arc::new(TokenImpl)))))
    }
    fn echo(&self, tag: u64) -> NetResult<u64> {
        if !self.seen.lock().insert(tag) {
            self.dups.lock().push(tag);
        }
        Ok(tag)
    }
}

#[test]
fn sixteen_threads_share_one_space_without_losing_replies() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 12);
    let clock = net.clock();
    let server = space_on(&net, "server", Options::fast());
    let mint_impl = Arc::new(MintImpl {
        space: server.clone(),
        seen: Mutex::new(HashSet::new()),
        dups: Mutex::new(Vec::new()),
    });
    server
        .export(Arc::new(MintExport(Arc::clone(&mint_impl))))
        .unwrap();

    // ONE client space: all threads share its connection pool, call
    // client and object table.
    let client = space_on(&net, "client", Options::fast());
    let mint = Arc::new(
        MintClient::narrow(
            client
                .import_root(&Endpoint::sim("server"), ObjIx::FIRST_USER)
                .unwrap(),
        )
        .unwrap(),
    );

    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let mint = Arc::clone(&mint);
            std::thread::spawn(move || {
                for i in 0..CALLS_PER_THREAD {
                    let tag = t * 1_000_000 + i;
                    let reply = mint.echo(tag).unwrap();
                    assert_eq!(reply, tag, "reply cross-wired between callers");
                    if i % MINT_EVERY == 0 {
                        let token = mint.make().unwrap();
                        token.poke().unwrap();
                        drop(token);
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    // Exactly one execution per issued request: none lost (every echo
    // above returned), none duplicated.
    assert_eq!(
        mint_impl.seen.lock().len() as u64,
        THREADS * CALLS_PER_THREAD,
        "server saw a different number of distinct tags than were sent"
    );
    assert!(
        mint_impl.dups.lock().is_empty(),
        "duplicated dispatches: {:?}",
        mint_impl.dups.lock()
    );

    // All minted tokens were dropped; their table entries must drain and
    // the trace must replay cleanly through the formal model.
    drop(mint);
    wait_until(&clock, "server table back to the pinned mint", || {
        server.exported_count() == 1
    });
    wait_until(&clock, "client imports drained", || {
        client.imported_count() == 0
    });
    assert_conformant("contention_stress", &[&server, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "contention_stress");
}
