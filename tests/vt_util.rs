//! Shared harness for the virtual-time integration suites.
//!
//! Every scenario runs on a [`SimNet`] wired to a [`VirtualClock`]: all
//! runtime timers (call timeouts, retry backoff, lease renewal, clean
//! retry, breaker cooldown) read the same virtual clock, so nominal
//! seconds of waiting collapse into milliseconds of real time and the
//! schedule is reproducible. Tests drive the clock through [`wait_until`]
//! and [`pass_time`], and finish by replaying every space's captured
//! trace through the formal model with [`assert_conformant`].

#![allow(dead_code)] // Each test binary uses a subset of the helpers.

use std::sync::Arc;
use std::time::Duration;

use netobj::transport::sim::SimNet;
use netobj::transport::{ClockHandle, Endpoint};
use netobj::{Options, Space};
use netobj_dgc_model::Replayer;

/// Per-wait cap in *simulated* time: a scenario step that nominally needs
/// more than this is a bug, virtual time or not.
pub const SIM_WAIT_CAP: Duration = Duration::from_secs(300);

/// Real-time backstop so a deadlocked clock fails the test rather than
/// hanging the suite.
pub const REAL_WAIT_CAP: Duration = Duration::from_secs(30);

/// Builds a space on `net` with its options clock wired to the net's
/// (virtual) clock, so every runtime timer runs on simulated time.
pub fn space_on(net: &Arc<SimNet>, name: &str, mut options: Options) -> Space {
    options.clock = net.clock();
    Space::builder()
        .transport(Arc::new(Arc::clone(net)))
        .listen(Endpoint::sim(name))
        .options(options)
        .build()
        .unwrap()
}

/// Polls `cond`, nudging the virtual clock forward whenever the system is
/// idle. Fails after [`SIM_WAIT_CAP`] simulated (or [`REAL_WAIT_CAP`]
/// real) time.
pub fn wait_until(clock: &ClockHandle, what: &str, mut cond: impl FnMut() -> bool) {
    let vc = clock
        .as_virtual()
        .expect("wait_until needs a virtual clock");
    let sim_start = vc.elapsed();
    let real_deadline = std::time::Instant::now() + REAL_WAIT_CAP;
    while !cond() {
        assert!(
            vc.elapsed() - sim_start < SIM_WAIT_CAP,
            "simulated-time timeout: {what}"
        );
        assert!(
            std::time::Instant::now() < real_deadline,
            "real-time timeout: {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
        vc.maybe_auto_advance();
    }
}

/// Lets `d` of simulated time pass while background work (demons, retries,
/// in-flight frames) keeps running. If nothing at all is sleeping on the
/// clock, time is nudged forward directly.
pub fn pass_time(clock: &ClockHandle, d: Duration) {
    let vc = clock.as_virtual().expect("pass_time needs a virtual clock");
    let target = vc.elapsed() + d;
    let mut stalled = 0u32;
    while vc.elapsed() < target {
        let before = vc.elapsed();
        std::thread::sleep(Duration::from_millis(1));
        vc.maybe_auto_advance();
        if vc.elapsed() == before {
            stalled += 1;
            if stalled >= 5 {
                let step = (target - vc.elapsed()).min(Duration::from_millis(10));
                vc.advance(step);
                stalled = 0;
            }
        } else {
            stalled = 0;
        }
    }
}

/// Replays every space's captured trace through the formal model and
/// asserts the scenario was conformant: no invariant, safety or measure
/// violations, and no event the model cannot explain.
///
/// With `NETOBJ_TRACE_DUMP=<dir>` set, also writes a canonical projection
/// of the captured traces to `<dir>/<scenario>.trace` — the CI flake
/// detector runs the suite twice and diffs these dumps.
pub fn assert_conformant(scenario: &str, spaces: &[&Space]) {
    let mut replayer = Replayer::new();
    for s in spaces {
        replayer.ingest(s.id(), s.trace_events());
    }
    let report = replayer.replay();
    if let Ok(dir) = std::env::var("NETOBJ_TRACE_DUMP") {
        dump_canonical(&dir, scenario, spaces, &report);
    }
    assert!(
        report.is_conformant(),
        "{scenario}: trace oracle violations: {:#?}",
        report.violations
    );
    assert!(
        report.unresolved.is_empty(),
        "{scenario}: events the model cannot explain: {:#?}",
        report.unresolved
    );
}

/// Writes the canonical projection of a scenario's traces: the *logical*
/// collector facts (which objects were exported, registered, cleaned and
/// collected at which space) plus the replay verdict, with run-varying
/// detail — timestamps, sequence numbers, retry repeats, ping cadence and
/// the raw space ids — projected away. Two runs of the same seeded
/// scenario must produce byte-identical dumps; a diff is a flake.
fn dump_canonical(
    dir: &str,
    scenario: &str,
    spaces: &[&Space],
    report: &netobj_dgc_model::ReplayReport,
) {
    use netobj::wire::TraceKind;
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let idx: std::collections::HashMap<_, _> = spaces
        .iter()
        .enumerate()
        .map(|(i, s)| (s.id(), i))
        .collect();
    let name = |id| idx.get(&id).map_or("ext".to_owned(), |i| format!("s{i}"));

    let mut facts = BTreeSet::new();
    let mut counts: Vec<(usize, usize)> = vec![(0, 0); spaces.len()];
    for (si, s) in spaces.iter().enumerate() {
        for e in s.trace_events() {
            match e.kind {
                TraceKind::ExportCreated { owner, target } => {
                    facts.insert(format!("export {} ix={}", name(owner), target.ix.0));
                }
                TraceKind::ExportCollected { owner, target } => {
                    facts.insert(format!("collect {} ix={}", name(owner), target.ix.0));
                }
                TraceKind::DirtyApplied { owner, target, .. } => {
                    facts.insert(format!("registered {} ix={}", name(owner), target.ix.0));
                }
                TraceKind::CleanApplied { owner, target, .. } => {
                    facts.insert(format!("cleaned {} ix={}", name(owner), target.ix.0));
                }
                TraceKind::OwnerDead { client, owner } => {
                    facts.insert(format!("owner-dead {} by {}", name(owner), name(client)));
                }
                TraceKind::SpaceCrashed { space } => {
                    facts.insert(format!("crashed {}", name(space)));
                }
                TraceKind::ClientPurged { owner, client } => {
                    facts.insert(format!("purged {} at {}", name(client), name(owner)));
                }
                TraceKind::SurrogateCreated { .. } => counts[si].0 += 1,
                TraceKind::SurrogateDropped { .. } => counts[si].1 += 1,
                // Everything else (pings, pins, stale rejections, retry
                // repeats) is schedule-dependent detail: projecting it
                // away is what makes the dump diffable across runs.
                _ => {}
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "scenario {scenario}");
    let _ = writeln!(
        out,
        "replay spaces={} refs={} violations={} unresolved={}",
        report.spaces,
        report.refs,
        report.violations.len(),
        report.unresolved.len()
    );
    for (i, (created, dropped)) in counts.iter().enumerate() {
        let _ = writeln!(out, "space s{i} surrogates={created} dropped={dropped}");
    }
    for f in &facts {
        let _ = writeln!(out, "{f}");
    }
    std::fs::create_dir_all(dir).expect("create NETOBJ_TRACE_DUMP dir");
    std::fs::write(format!("{dir}/{scenario}.trace"), out).expect("write trace dump");
}

/// Asserts the whole scenario consumed at most `bound` of simulated time
/// (from clock creation to now).
pub fn assert_sim_time_under(clock: &ClockHandle, bound: Duration, scenario: &str) {
    let vc = clock.as_virtual().expect("virtual clock");
    let used = vc.elapsed();
    assert!(
        used <= bound,
        "{scenario} used {used:?} of simulated time (bound {bound:?})"
    );
}
