//! Deterministic fuzz regression: the untrusted decode path (frame →
//! envelope → pickle) survives a large adversarial workload without
//! panicking, and the whole run is a pure function of its seed.
//!
//! This is the in-tree, always-on slice of the fuzz harness; CI also runs
//! the `fuzz_wire` binary with a bigger budget (see the fuzz-smoke job).

use std::path::PathBuf;

use netobj_bench::fuzz::{self, FuzzRng};

fn corpus() -> Vec<(String, Vec<u8>)> {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus");
    let from_disk = fuzz::load_corpus(&dir);
    assert!(
        !from_disk.is_empty(),
        "committed corpus missing at {} — run `cargo run -p netobj-bench --bin gen_corpus`",
        dir.display()
    );
    from_disk
}

/// The committed corpus must stay in sync with the built-in seeds it is
/// generated from; a wire-format change without a corpus regen fails here
/// with an actionable message.
#[test]
fn committed_corpus_matches_generator() {
    let on_disk = corpus();
    let builtin = fuzz::builtin_corpus();
    assert_eq!(on_disk.len(), builtin.len(), "corpus file count drifted");
    for (name, bytes) in builtin {
        let found = on_disk
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("corpus file {name}.bin missing"));
        assert_eq!(
            found.1, bytes,
            "tests/corpus/{name}.bin is stale — run `cargo run -p netobj-bench --bin gen_corpus`"
        );
    }
}

/// ≥100k adversarial cases, zero panics. No `catch_unwind` here: a panic
/// anywhere in the decode path fails the test with its own backtrace.
#[test]
fn hundred_thousand_cases_no_panics() {
    let corpus = corpus();
    let report = fuzz::run(0x4e45_544f_424a, 100_000, &corpus, |_, _| {});
    assert_eq!(report.cases, 100_000);
    // The harness must actually exercise the valid paths, not just feed
    // noise that dies at the first length check.
    assert!(report.frames > 10_000, "too few frames decoded: {report:?}");
    assert!(report.msgs > 1_000, "too few messages decoded: {report:?}");
    assert!(report.values > 100, "too few payloads decoded: {report:?}");
}

/// Same seed, same corpus → byte-identical behaviour, twice. This is what
/// makes a CI crash reproducible from the logged seed alone.
#[test]
fn runs_are_deterministic() {
    let corpus = corpus();
    let mut first_cases: Vec<u64> = Vec::new();
    let a = fuzz::run(2026, 20_000, &corpus, |_, bytes| {
        // Fingerprint each case cheaply (FNV-1a) instead of storing it.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        first_cases.push(h);
    });
    let mut i = 0usize;
    let b = fuzz::run(2026, 20_000, &corpus, |_, bytes| {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &byte in bytes {
            h = (h ^ u64::from(byte)).wrapping_mul(0x100_0000_01b3);
        }
        assert_eq!(h, first_cases[i], "case {i} diverged between runs");
        i += 1;
    });
    assert_eq!(a, b, "aggregate report diverged between identical runs");
    assert_ne!(
        a,
        fuzz::run(2027, 20_000, &corpus, |_, _| {}),
        "different seeds should explore different inputs"
    );
}

/// The generator respects its own size cap: no case may balloon past the
/// documented bound (plus framing and the optional trailing valid frame).
#[test]
fn cases_are_bounded() {
    let corpus = corpus();
    let mut rng = FuzzRng::new(99);
    let biggest_seed = corpus.iter().map(|(_, b)| b.len()).max().unwrap_or(0);
    for _ in 0..50_000 {
        let case = fuzz::build_case(&mut rng, &corpus);
        assert!(
            case.len() <= 64 * 1024 + 8 + biggest_seed,
            "case exceeded size bound: {} bytes",
            case.len()
        );
    }
}
