//! Model/runtime conformance: the runtime's observable collector traffic
//! must match what the abstract specification prescribes for the same
//! scenario, the captured event traces must replay onto the model without
//! violating any proof invariant, and the model's own invariants hold
//! across large random batches.

#[path = "vt_util.rs"]
mod vt_util;

use std::sync::Arc;
use std::time::Duration;

use netobj::dgc::methods;
use netobj::transport::sim::{LinkConfig, SimNet};
use netobj::transport::{Endpoint, Transport};
use netobj::wire::{ObjIx, Pickle, TraceKind, WireRep};
use netobj::{network_object, NetResult, Options, Space};
use netobj_dgc_model::explore::{assert_drained, random_walk, WalkPolicy};
use netobj_dgc_model::{apply, Config, Msg, Proc, Ref, Replayer, Transition};
use netobj_rpc::CallClient;
use parking_lot::Mutex;
use vt_util::{assert_conformant, assert_sim_time_under, space_on, wait_until};

network_object! {
    /// Carrier interface for conformance scenarios.
    pub interface Box_ ("conf.Box"): client BoxClient, export BoxExport {
        0 => fn touch(&self) -> ();
    }
}

struct BoxImpl;
impl Box_ for BoxImpl {
    fn touch(&self) -> NetResult<()> {
        Ok(())
    }
}

/// Runs the canonical one-reference life cycle in the *model*, counting
/// messages by kind.
fn model_lifecycle_counts() -> (u64, u64, u64, u64) {
    let mut c = Config::new(2, &[0]);
    let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
    let mut dirty = 0u64;
    let mut dirty_ack = 0u64;
    let mut clean = 0u64;
    let mut clean_ack = 0u64;
    let steps = [
        Transition::MakeCopy(owner, client, r),
        Transition::ReceiveCopy(owner, client, r, 0),
        Transition::DoDirtyCall(client, r),
        Transition::ReceiveDirty(client, owner, r),
        Transition::DoDirtyAck(owner, client, r),
        Transition::ReceiveDirtyAck(owner, client, r),
        Transition::DoCopyAck(client, owner, r, 0),
        Transition::ReceiveCopyAck(client, owner, r, 0),
    ];
    for t in steps {
        apply(&mut c, t);
        count_new(&c, &mut dirty, &mut dirty_ack, &mut clean, &mut clean_ack);
    }
    c.drop_ref(client, r);
    for t in [
        Transition::Finalize(client, r),
        Transition::DoCleanCall(client, r),
        Transition::ReceiveClean(client, owner, r),
        Transition::DoCleanAck(owner, client, r),
        Transition::ReceiveCleanAck(owner, client, r),
    ] {
        apply(&mut c, t);
        count_new(&c, &mut dirty, &mut dirty_ack, &mut clean, &mut clean_ack);
    }
    assert!(c.quiescent());
    (dirty, dirty_ack, clean, clean_ack)
}

/// Counts in-flight messages once (each message is observed exactly once
/// in the deterministic schedule above, right after being posted).
fn count_new(
    c: &Config,
    dirty: &mut u64,
    dirty_ack: &mut u64,
    clean: &mut u64,
    clean_ack: &mut u64,
) {
    *dirty += c.count_messages(|m| matches!(m, Msg::Dirty(_))) as u64;
    *dirty_ack += c.count_messages(|m| matches!(m, Msg::DirtyAck(_))) as u64;
    *clean += c.count_messages(|m| matches!(m, Msg::Clean(_))) as u64;
    *clean_ack += c.count_messages(|m| matches!(m, Msg::CleanAck(_))) as u64;
}

#[test]
fn runtime_traffic_matches_model_for_one_lifecycle() {
    // Model: exactly one dirty, one clean (each observed once in flight).
    let (dirty, dirty_ack, clean, clean_ack) = model_lifecycle_counts();
    assert_eq!((dirty, dirty_ack, clean, clean_ack), (1, 1, 1, 1));

    // Runtime: same scenario — bind, use, drop, collect.
    let net = SimNet::virtual_time(LinkConfig::instant(), 1);
    let clock = net.clock();
    let owner = space_on(&net, "owner", Options::fast());
    owner
        .export(Arc::new(BoxExport(Arc::new(BoxImpl))))
        .unwrap();
    let client = space_on(&net, "client", Options::fast());
    let b = BoxClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    b.touch().unwrap();
    drop(b);
    wait_until(&clock, "collected", || client.imported_count() == 0);

    let stats = client.stats();
    assert_eq!(stats.dirty_sent, u64::from(dirty > 0), "one dirty call");
    assert_eq!(stats.clean_sent, u64::from(clean > 0), "one clean call");
    assert_eq!(owner.stats().dirty_received, 1);
    assert_eq!(owner.stats().clean_received, 1);

    // The captured trace replays onto the model as exactly the thirteen
    // transitions of the canonical life cycle, ending quiescent.
    let mut replayer = Replayer::new();
    replayer.ingest(owner.id(), owner.trace_events());
    replayer.ingest(client.id(), client.trace_events());
    let report = replayer.replay();
    assert!(
        report.is_conformant(),
        "violations: {:#?}",
        report.violations
    );
    assert!(report.unresolved.is_empty(), "{:#?}", report.unresolved);
    assert_eq!(
        report.transitions, 13,
        "one life cycle is exactly 13 model transitions"
    );
    assert!(report.final_config.quiescent(), "trace must end quiescent");
    assert_conformant("one_lifecycle", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "one_lifecycle");
}

#[test]
fn model_batch_large_scale() {
    // A heavier batch than the unit tests: thousands of schedules across
    // varied topologies, all invariants checked at every step.
    let mut total_steps = 0u64;
    for nprocs in 2..=5 {
        for seed in 0..30 {
            let (c, stats) = random_walk(
                WalkPolicy {
                    nprocs,
                    nrefs: 2,
                    activity: 100,
                    ..WalkPolicy::default()
                },
                seed,
            );
            assert_drained(&c);
            total_steps += stats.steps;
        }
    }
    assert!(total_steps > 10_000, "batch exercised {total_steps} steps");
}

/// Regression for the TR-116 transmission race: a dirty call whose
/// sequence number is at or below the owner's per-client floor (i.e. it
/// was superseded by a later clean) must be rejected, leave a `DirtyStale`
/// mark in the trace, and the whole trace must still replay cleanly.
#[test]
fn stale_dirty_is_rejected_and_trace_replays_clean() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 116);
    let clock = net.clock();
    let owner = space_on(&net, "owner", Options::fast());
    owner
        .export(Arc::new(BoxExport(Arc::new(BoxImpl))))
        .unwrap();
    let client = space_on(&net, "client", Options::fast());

    // One full life cycle: the clean raises the owner's seqno floor for
    // this client above the dirty it superseded.
    let b = BoxClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    b.touch().unwrap();
    drop(b);
    wait_until(&clock, "collected", || client.imported_count() == 0);
    assert_eq!(owner.stats().dirty_stale, 0);

    // Re-send the superseded dirty raw (seqno 1, below the floor its own
    // clean raised), as if it had been delayed in the network past that
    // clean — the transmission race of TR-116 §2.3. The owner must refuse
    // it rather than resurrect the dead registration.
    let conn = Transport::connect(&net, &Endpoint::sim("owner")).unwrap();
    let raw = CallClient::with_clock(Arc::from(conn), client.id(), clock.clone());
    let stale = raw.call(
        WireRep::gc_service(owner.id()),
        methods::DIRTY,
        (ObjIx::FIRST_USER.0, 1u64, None::<Endpoint>).to_pickle_bytes(),
    );
    assert!(stale.is_err(), "stale dirty must be rejected: {stale:?}");
    assert_eq!(owner.stats().dirty_stale, 1);
    // Sequence number 0 is not a legal protocol value at all: it draws a
    // BadArguments rejection up front, not a stale mark.
    let malformed = raw.call(
        WireRep::gc_service(owner.id()),
        methods::DIRTY,
        (ObjIx::FIRST_USER.0, 0u64, None::<Endpoint>).to_pickle_bytes(),
    );
    assert!(
        malformed.is_err(),
        "seqno 0 must be rejected: {malformed:?}"
    );
    assert_eq!(owner.stats().dirty_stale, 1);
    assert!(
        owner
            .trace_events()
            .iter()
            .any(|e| matches!(e.kind, TraceKind::DirtyStale { .. })),
        "rejection must be visible in the trace"
    );
    raw.close();

    // The reference is still importable afterwards (fresh seqnos beat the
    // floor) — the floor only fences the past, not the future.
    let b2 = BoxClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    b2.touch().unwrap();

    // The full trace — including the refused dirty — replays onto the
    // model without violations: the stale dirty is counted, not folded.
    let mut replayer = Replayer::new();
    replayer.ingest(owner.id(), owner.trace_events());
    replayer.ingest(client.id(), client.trace_events());
    let report = replayer.replay();
    assert!(
        report.is_conformant(),
        "violations: {:#?}",
        report.violations
    );
    assert!(report.unresolved.is_empty(), "{:#?}", report.unresolved);
    assert!(report.stale_dirties >= 1, "the refusal must be counted");
    assert_conformant("stale_dirty", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "stale_dirty");
}

#[test]
fn runtime_mass_churn_reaches_fixpoint() {
    // Many clients churning handles against one owner: after everything
    // drops, the owner's table must return to exactly the pinned roots.
    let net = SimNet::virtual_time(LinkConfig::instant(), 12);
    let clock = net.clock();
    let owner = space_on(&net, "owner", Options::fast());
    struct Factory {
        space: Space,
        made: Mutex<Vec<Arc<BoxExport<BoxImpl>>>>,
    }
    network_object! {
        /// Factory of boxes for the churn test.
        pub interface Mint ("conf.Mint"): client MintClient, export MintExport {
            0 => fn make(&self) -> BoxClient;
        }
    }
    impl Mint for Factory {
        fn make(&self) -> NetResult<BoxClient> {
            let obj = Arc::new(BoxExport(Arc::new(BoxImpl)));
            self.made.lock().push(Arc::clone(&obj));
            BoxClient::narrow(self.space.local(obj))
        }
    }
    owner
        .export(Arc::new(MintExport(Arc::new(Factory {
            space: owner.clone(),
            made: Mutex::new(Vec::new()),
        }))))
        .unwrap();

    let mut clients = Vec::new();
    for i in 0..4 {
        let net = Arc::clone(&net);
        clients.push(std::thread::spawn(move || {
            let space = space_on(&net, &format!("client{i}"), Options::fast());
            let mint = MintClient::narrow(
                space
                    .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
                    .unwrap(),
            )
            .unwrap();
            for _ in 0..25 {
                let b = mint.make().unwrap();
                b.touch().unwrap();
                drop(b);
            }
            space
        }));
    }
    let spaces: Vec<Space> = clients.into_iter().map(|j| j.join().unwrap()).collect();
    // 100 boxes were minted and dropped; only the mint may remain.
    wait_until(&clock, "owner table back to the pinned mint", || {
        owner.exported_count() == 1
    });
    for s in &spaces {
        wait_until(&clock, "client imports drained", || s.imported_count() <= 1);
    }

    let mut participants: Vec<&Space> = vec![&owner];
    participants.extend(spaces.iter());
    assert_conformant("mass_churn", &participants);
    assert_sim_time_under(&clock, Duration::from_secs(120), "mass_churn");
}
