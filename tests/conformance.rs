//! Model/runtime conformance: the runtime's observable collector traffic
//! must match what the abstract specification prescribes for the same
//! scenario, and the model's invariants hold across large random batches.

use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::transport::sim::SimNet;
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Options, Space};
use netobj_dgc_model::explore::{assert_drained, random_walk, WalkPolicy};
use netobj_dgc_model::{apply, Config, Msg, Proc, Ref, Transition};
use parking_lot::Mutex;

network_object! {
    /// Carrier interface for conformance scenarios.
    pub interface Box_ ("conf.Box"): client BoxClient, export BoxExport {
        0 => fn touch(&self) -> ();
    }
}

struct BoxImpl;
impl Box_ for BoxImpl {
    fn touch(&self) -> NetResult<()> {
        Ok(())
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Runs the canonical one-reference life cycle in the *model*, counting
/// messages by kind.
fn model_lifecycle_counts() -> (u64, u64, u64, u64) {
    let mut c = Config::new(2, &[0]);
    let (owner, client, r) = (Proc(0), Proc(1), Ref(0));
    let mut dirty = 0u64;
    let mut dirty_ack = 0u64;
    let mut clean = 0u64;
    let mut clean_ack = 0u64;
    let steps = [
        Transition::MakeCopy(owner, client, r),
        Transition::ReceiveCopy(owner, client, r, 0),
        Transition::DoDirtyCall(client, r),
        Transition::ReceiveDirty(client, owner, r),
        Transition::DoDirtyAck(owner, client, r),
        Transition::ReceiveDirtyAck(owner, client, r),
        Transition::DoCopyAck(client, owner, r, 0),
        Transition::ReceiveCopyAck(client, owner, r, 0),
    ];
    for t in steps {
        apply(&mut c, t);
        count_new(&c, &mut dirty, &mut dirty_ack, &mut clean, &mut clean_ack);
    }
    c.drop_ref(client, r);
    for t in [
        Transition::Finalize(client, r),
        Transition::DoCleanCall(client, r),
        Transition::ReceiveClean(client, owner, r),
        Transition::DoCleanAck(owner, client, r),
        Transition::ReceiveCleanAck(owner, client, r),
    ] {
        apply(&mut c, t);
        count_new(&c, &mut dirty, &mut dirty_ack, &mut clean, &mut clean_ack);
    }
    assert!(c.quiescent());
    (dirty, dirty_ack, clean, clean_ack)
}

/// Counts in-flight messages once (each message is observed exactly once
/// in the deterministic schedule above, right after being posted).
fn count_new(
    c: &Config,
    dirty: &mut u64,
    dirty_ack: &mut u64,
    clean: &mut u64,
    clean_ack: &mut u64,
) {
    *dirty += c.count_messages(|m| matches!(m, Msg::Dirty(_))) as u64;
    *dirty_ack += c.count_messages(|m| matches!(m, Msg::DirtyAck(_))) as u64;
    *clean += c.count_messages(|m| matches!(m, Msg::Clean(_))) as u64;
    *clean_ack += c.count_messages(|m| matches!(m, Msg::CleanAck(_))) as u64;
}

#[test]
fn runtime_traffic_matches_model_for_one_lifecycle() {
    // Model: exactly one dirty, one clean (each observed once in flight).
    let (dirty, dirty_ack, clean, clean_ack) = model_lifecycle_counts();
    assert_eq!((dirty, dirty_ack, clean, clean_ack), (1, 1, 1, 1));

    // Runtime: same scenario — bind, use, drop, collect.
    let net = SimNet::instant();
    let owner = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("owner"))
        .options(Options::fast())
        .build()
        .unwrap();
    owner
        .export(Arc::new(BoxExport(Arc::new(BoxImpl))))
        .unwrap();
    let client = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("client"))
        .options(Options::fast())
        .build()
        .unwrap();
    let b = BoxClient::narrow(
        client
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    b.touch().unwrap();
    drop(b);
    wait_until("collected", || client.imported_count() == 0);

    let stats = client.stats();
    assert_eq!(stats.dirty_sent, u64::from(dirty > 0), "one dirty call");
    assert_eq!(stats.clean_sent, u64::from(clean > 0), "one clean call");
    assert_eq!(owner.stats().dirty_received, 1);
    assert_eq!(owner.stats().clean_received, 1);
}

#[test]
fn model_batch_large_scale() {
    // A heavier batch than the unit tests: thousands of schedules across
    // varied topologies, all invariants checked at every step.
    let mut total_steps = 0u64;
    for nprocs in 2..=5 {
        for seed in 0..30 {
            let (c, stats) = random_walk(
                WalkPolicy {
                    nprocs,
                    nrefs: 2,
                    activity: 100,
                    ..WalkPolicy::default()
                },
                seed,
            );
            assert_drained(&c);
            total_steps += stats.steps;
        }
    }
    assert!(total_steps > 10_000, "batch exercised {total_steps} steps");
}

#[test]
fn runtime_mass_churn_reaches_fixpoint() {
    // Many clients churning handles against one owner: after everything
    // drops, the owner's table must return to exactly the pinned roots.
    let net = SimNet::instant();
    let owner = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("owner"))
        .options(Options::fast())
        .build()
        .unwrap();
    struct Factory {
        space: Space,
        made: Mutex<Vec<Arc<BoxExport<BoxImpl>>>>,
    }
    network_object! {
        /// Factory of boxes for the churn test.
        pub interface Mint ("conf.Mint"): client MintClient, export MintExport {
            0 => fn make(&self) -> BoxClient;
        }
    }
    impl Mint for Factory {
        fn make(&self) -> NetResult<BoxClient> {
            let obj = Arc::new(BoxExport(Arc::new(BoxImpl)));
            self.made.lock().push(Arc::clone(&obj));
            BoxClient::narrow(self.space.local(obj))
        }
    }
    owner
        .export(Arc::new(MintExport(Arc::new(Factory {
            space: owner.clone(),
            made: Mutex::new(Vec::new()),
        }))))
        .unwrap();

    let mut clients = Vec::new();
    for i in 0..4 {
        let net = Arc::clone(&net);
        clients.push(std::thread::spawn(move || {
            let space = Space::builder()
                .transport(Arc::new(net))
                .listen(Endpoint::sim(format!("client{i}")))
                .options(Options::fast())
                .build()
                .unwrap();
            let mint = MintClient::narrow(
                space
                    .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
                    .unwrap(),
            )
            .unwrap();
            for _ in 0..25 {
                let b = mint.make().unwrap();
                b.touch().unwrap();
                drop(b);
            }
            space
        }));
    }
    let spaces: Vec<Space> = clients.into_iter().map(|j| j.join().unwrap()).collect();
    // 100 boxes were minted and dropped; only the mint may remain.
    wait_until("owner table back to the pinned mint", || {
        owner.exported_count() == 1
    });
    for s in &spaces {
        wait_until("client imports drained", || s.imported_count() <= 1);
    }
}
