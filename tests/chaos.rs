//! Chaos tests: seeded fault schedules driving the resilient call layer.
//!
//! Each scenario builds a `SimNet` with a fixed seed (reproducible fault
//! schedules) on a **virtual clock**, so every timeout, backoff, lease
//! and retry runs on simulated time: nominal seconds of waiting collapse
//! into milliseconds of wall clock. The tests assert *invariants* —
//! at-most-once execution observed through server-side counters, eventual
//! convergence after healing, fail-fast latency bounds in simulated time
//! — and finish by replaying every space's captured collector trace
//! through the formal model (`assert_conformant`).

#[path = "vt_util.rs"]
mod vt_util;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use netobj::transport::sim::{FlakePlan, LinkConfig, SimNet};
use netobj::transport::{ClockHandle, Endpoint};
use netobj::wire::ObjIx;
use netobj::{network_object, Error, NetResult, Options, ResourceBudget, RetryPolicy, Space};
use parking_lot::Mutex;
use vt_util::{assert_conformant, assert_sim_time_under, pass_time, space_on, wait_until};

network_object! {
    /// A counter with one at-most-once method and one idempotent method.
    pub interface Counter ("chaos.Counter"): client CounterClient, export CounterExport {
        0 => fn add(&self, n: i64) -> i64;
        1 [idempotent] => fn read(&self) -> i64;
    }
}

/// Server-side implementation that counts *executions* (not replies): the
/// ground truth for at-most-once assertions.
struct CounterImpl {
    value: Mutex<i64>,
    adds_executed: AtomicU64,
    reads_executed: AtomicU64,
    /// Artificial per-call service time (for saturation scenarios),
    /// spent on the scenario's clock so it is simulated, not real.
    service_time: Duration,
    clock: ClockHandle,
}

impl CounterImpl {
    fn new() -> Arc<CounterImpl> {
        CounterImpl::slow(Duration::ZERO, ClockHandle::system())
    }

    fn slow(service_time: Duration, clock: ClockHandle) -> Arc<CounterImpl> {
        Arc::new(CounterImpl {
            value: Mutex::new(0),
            adds_executed: AtomicU64::new(0),
            reads_executed: AtomicU64::new(0),
            service_time,
            clock,
        })
    }
}

impl Counter for CounterImpl {
    fn add(&self, n: i64) -> NetResult<i64> {
        self.adds_executed.fetch_add(1, Ordering::SeqCst);
        if !self.service_time.is_zero() {
            self.clock.sleep(self.service_time);
        }
        let mut v = self.value.lock();
        *v += n;
        Ok(*v)
    }

    fn read(&self) -> NetResult<i64> {
        self.reads_executed.fetch_add(1, Ordering::SeqCst);
        Ok(*self.value.lock())
    }
}

/// Simulated time elapsed on the scenario clock.
fn sim_now(clock: &ClockHandle) -> Duration {
    clock.as_virtual().expect("virtual clock").elapsed()
}

fn import_counter(client: &Space, owner: &str) -> CounterClient {
    CounterClient::narrow(
        client
            .import_root(&Endpoint::sim(owner), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap()
}

/// Scenario 1: a seeded flaky link drops ~25% of frames. Calls to the
/// `[idempotent]` method, under a retry policy with a per-attempt
/// deadline, all succeed transparently — and the retries are observable
/// in the stats.
#[test]
fn flaky_link_idempotent_calls_retry_transparently() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 0xC0FFEE);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.call_timeout = Duration::from_secs(6);
    opts.retry = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(25),
        attempt_timeout: Some(Duration::from_millis(120)),
    };
    // The flake would also open the breaker mid-run and fail calls fast;
    // this scenario isolates the retry path.
    opts.breaker.enabled = false;
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::new();
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts);
    let c = import_counter(&client, "owner");

    net.set_flake("owner", Some(FlakePlan::uniform(0.25)), 42);
    for _ in 0..20 {
        c.read().expect("idempotent call must survive the flake");
    }
    net.set_flake("owner", None, 0);

    assert!(
        client.stats().retries_attempted >= 1,
        "a 25% flake over 20 calls must force at least one retry: {:?}",
        client.stats()
    );
    // Idempotent retries may re-execute; executions ≥ calls is expected.
    assert!(imp.reads_executed.load(Ordering::SeqCst) >= 20);

    assert_conformant("flaky_link", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "flaky_link");
}

/// Scenario 2: the same flaky link, but the *at-most-once* method. Failed
/// calls are ambiguous (the frame vanished silently) and must NOT be
/// retried: the server-side execution counter never exceeds one execution
/// per issued call.
#[test]
fn ambiguous_failures_never_double_execute() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 7);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.call_timeout = Duration::from_millis(300);
    opts.breaker.enabled = false; // isolate the classification logic
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::new();
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts);
    let c = import_counter(&client, "owner");

    net.set_flake("owner", Some(FlakePlan::uniform(0.25)), 1234);
    let total = 24;
    let mut successes = 0u64;
    let mut failures = 0u64;
    for _ in 0..total {
        match c.add(1) {
            Ok(_) => successes += 1,
            Err(e) => {
                assert!(
                    e.is_ambiguous(),
                    "silent drops must surface as ambiguous, got {e:?}"
                );
                failures += 1;
            }
        }
    }
    net.set_flake("owner", None, 0);

    let executed = imp.adds_executed.load(Ordering::SeqCst);
    assert_eq!(successes + failures, total);
    assert!(failures >= 1, "seed 1234 must produce at least one failure");
    assert!(executed >= successes, "every success executed");
    assert!(
        executed <= successes + failures,
        "at-most-once violated: {executed} executions for {successes} \
         successes + {failures} ambiguous failures"
    );
    // The load-bearing default: no transparent retries of ambiguous
    // failures on a non-idempotent method.
    assert_eq!(client.stats().retries_attempted, 0);

    assert_conformant("ambiguous_failures", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "ambiguous_failures");
}

/// Scenario 3: worker-pool saturation sheds calls with a retryable `Busy`
/// reply. Shed calls never executed, so transparent retries preserve
/// exactly-once-per-success — verified against the server-side counter.
#[test]
fn shed_calls_retry_and_never_double_execute() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 3);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.workers = 1;
    opts.server_queue_limit = Some(1);
    opts.retry = RetryPolicy {
        max_attempts: 20,
        base_delay: Duration::from_millis(10),
        max_delay: Duration::from_millis(100),
        attempt_timeout: None,
    };
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::slow(Duration::from_millis(50), clock.clone());
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts);
    let c = import_counter(&client, "owner");

    let threads: Vec<_> = (0..6)
        .map(|_| {
            let c = c.clone();
            std::thread::spawn(move || c.add(1))
        })
        .collect();
    let mut ok = 0;
    for t in threads {
        if t.join().unwrap().is_ok() {
            ok += 1;
        }
    }
    assert_eq!(ok, 6, "every call must eventually get through");
    assert_eq!(
        imp.adds_executed.load(Ordering::SeqCst),
        6,
        "a shed call must not have executed; retries must not double-execute"
    );
    assert_eq!(*imp.value.lock(), 6);

    // The served/rejected split: `calls_served` counts dispatches that
    // reached an object (a Busy shed never did — the dispatch-side
    // histogram pins the count at exactly the 6 executions), and nothing
    // in this scenario was refused outright.
    let served_before = owner.stats().calls_served;
    assert_eq!(
        owner.metrics().app_calls["serve/m0"].total(),
        6,
        "exactly the 6 executed adds were dispatched; sheds never reached the object"
    );
    assert_eq!(owner.stats().calls_rejected, 0);

    // A call for an object the owner never exported is the opposite case:
    // rejected before any object runs, counted in `calls_rejected` and
    // *not* in `calls_served`.
    use netobj::transport::Transport;
    let conn = net.connect(&Endpoint::sim("owner")).unwrap();
    let raw = netobj_rpc::CallClient::new(Arc::from(conn), netobj::wire::SpaceId::fresh());
    let bogus = netobj::wire::WireRep::new(owner.id(), ObjIx(999));
    assert!(raw
        .call_raw(bogus, 0, vec![], Duration::from_secs(5))
        .is_err());
    assert_eq!(owner.stats().calls_rejected, 1);
    assert_eq!(
        owner.stats().calls_served,
        served_before,
        "a rejected call must not count as served"
    );

    assert_conformant("shed_calls", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "shed_calls");
}

/// Scenario 4: the owner crashes; lease renewals fail until the client
/// declares the owner dead. From then on its surrogates are *broken*:
/// calls fail immediately with `OwnerDead` instead of burning the full
/// call timeout.
#[test]
fn crashed_owner_breaks_surrogates_to_fail_fast() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 5);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.call_timeout = Duration::from_secs(5);
    opts.lease = Some(Duration::from_millis(400));
    opts.dirty_timeout = Duration::from_millis(150);
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::new();
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts);
    let c = import_counter(&client, "owner");
    assert_eq!(c.add(1).unwrap(), 1);

    owner.crash();
    net.crash("owner");

    // Renewal failures accumulate until the owner is declared dead.
    wait_until(&clock, "owner declared dead", || {
        matches!(c.read(), Err(Error::OwnerDead(_)))
    });

    // Broken surrogate: fail-fast, not a timeout-sized stall (measured in
    // simulated time — a stall would burn the 5s call timeout here).
    let t0 = sim_now(&clock);
    let got = c.add(1);
    let elapsed = sim_now(&clock) - t0;
    assert!(matches!(got, Err(Error::OwnerDead(_))), "{got:?}");
    assert!(
        elapsed < Duration::from_millis(500),
        "broken surrogate must fail fast, took {elapsed:?} simulated \
         (call_timeout is 5s)"
    );
    assert!(client.stats().calls_failed_fast >= 1);
    assert_eq!(
        imp.adds_executed.load(Ordering::SeqCst),
        1,
        "no call reached the dead owner"
    );

    assert_conformant("crashed_owner", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "crashed_owner");
}

/// Scenario 5: crash and restart. The restarted process is a *new* space
/// (fresh id) at the old endpoint: stale surrogates fail definitively,
/// fresh imports work, and the reconnect is visible in the stats.
#[test]
fn restarted_owner_serves_fresh_imports_and_rejects_stale_stubs() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 11);
    let clock = net.clock();
    let opts = Options::fast();
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::new();
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts.clone());
    let old = import_counter(&client, "owner");
    assert_eq!(old.add(1).unwrap(), 1);

    owner.crash();
    net.crash("owner");
    net.restart("owner");
    let owner2 = space_on(&net, "owner", opts);
    let imp2 = CounterImpl::new();
    owner2
        .export(Arc::new(CounterExport(Arc::clone(&imp2))))
        .unwrap();
    assert_ne!(owner2.id(), owner.id(), "a restart is a new space");

    // Fresh import binds to the new incarnation and starts clean. The
    // first attempt may surface the pooled connection the crash killed;
    // the pool reconnects and the import then succeeds.
    let mut fresh_handle = None;
    wait_until(
        &clock,
        "fresh import binds to the new incarnation",
        || match client.import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER) {
            Ok(h) => {
                fresh_handle = Some(h);
                true
            }
            Err(_) => false,
        },
    );
    let fresh = CounterClient::narrow(fresh_handle.unwrap()).unwrap();
    assert_eq!(fresh.add(5).unwrap(), 5);
    assert_eq!(imp2.adds_executed.load(Ordering::SeqCst), 1);

    // The stale stub carries the dead incarnation's wireRep: the new owner
    // answers NoSuchObject — a definite failure, never silently re-bound.
    let got = old.add(1);
    assert!(matches!(got, Err(Error::Rpc(_))), "{got:?}");
    assert_eq!(*imp2.value.lock(), 5, "stale stub must not touch new state");

    // The crash killed the pooled connection; the fresh import reconnected.
    assert!(
        client.stats().reconnects >= 1,
        "expected a counted reconnect: {:?}",
        client.stats()
    );

    assert_conformant("restarted_owner", &[&owner, &owner2, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "restarted_owner");
}

/// Scenario 6: a silent partition makes consecutive calls time out until
/// the circuit breaker opens; from then on calls fail fast. After healing
/// and the cooldown, a probe closes the breaker and calls flow again.
#[test]
fn breaker_opens_fails_fast_and_recovers_after_heal() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 21);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.call_timeout = Duration::from_millis(250);
    opts.breaker.failure_threshold = 3;
    opts.breaker.cooldown = Duration::from_millis(200);
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::new();
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts);
    let c = import_counter(&client, "owner");
    assert_eq!(c.add(1).unwrap(), 1);

    net.set_down("owner", true);
    wait_until(&clock, "breaker opens", || {
        let _ = c.add(1);
        client.stats().breaker_opened >= 1
    });

    // Open breaker: rejection without touching the network — and without
    // burning any meaningful simulated time.
    let failed_fast_before = client.stats().calls_failed_fast;
    let t0 = sim_now(&clock);
    let got = c.add(1);
    let elapsed = sim_now(&clock) - t0;
    assert!(got.is_err());
    assert!(
        elapsed < Duration::from_millis(100),
        "open breaker must fail fast, took {elapsed:?} simulated"
    );
    assert!(client.stats().calls_failed_fast > failed_fast_before);

    net.set_down("owner", false);
    // After the cooldown the next call is admitted as a probe, succeeds,
    // and closes the breaker.
    wait_until(&clock, "breaker recovers", || c.add(1).is_ok());
    // Failed adds during the partition never executed (their frames were
    // silently eaten), so the value equals the execution count.
    assert_eq!(
        c.read().unwrap(),
        imp.adds_executed.load(Ordering::SeqCst) as i64
    );

    assert_conformant("breaker", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "breaker");
}

/// Scenario 7: clean calls issued into heavy seeded flake keep retrying
/// with the same sequence number; once the weather clears, cleanup
/// converges — the owner hears the clean and the client reclaims its slot.
#[test]
fn cleans_converge_after_flake_clears() {
    let net = SimNet::virtual_time(LinkConfig::instant(), 31);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.clean_timeout = Duration::from_millis(150);
    opts.clean_retry = Duration::from_millis(50);
    opts.max_clean_retries = 100;
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::new();
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();
    let client = space_on(&net, "client", opts);
    let c = import_counter(&client, "owner");
    assert_eq!(c.add(1).unwrap(), 1);

    // Heavy bursty loss: most clean attempts die on the wire.
    net.set_flake(
        "owner",
        Some(FlakePlan {
            loss: 0.8,
            burst_len: 3,
        }),
        4242,
    );
    let cleans_before = owner.stats().clean_received;
    drop(c);
    pass_time(&clock, Duration::from_millis(400));
    net.set_flake("owner", None, 0);

    wait_until(&clock, "clean lands after heal", || {
        owner.stats().clean_received > cleans_before
    });
    wait_until(&clock, "client slot reclaimed", || {
        client.imported_count() == 0
    });

    assert_conformant("cleans_converge", &[&owner, &client]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "cleans_converge");
}

/// Scenario 8: one abusive peer floods a budgeted owner — hogging the
/// queue from several threads, opening more connections than its
/// allowance — while three honest clients run their workloads. The
/// per-client budget and fair admission must keep the honest success rate
/// at ≥99% with bounded latency, shed the abuser (visibly, in both the
/// stats and the per-client Prometheus gauges), and the collector traces
/// of the honest participants must still replay conformantly.
#[test]
fn abusive_client_is_shed_while_honest_clients_succeed() {
    use netobj::transport::Transport;
    use netobj::wire::{Pickle, SpaceId, WireRep};

    let net = SimNet::virtual_time(LinkConfig::instant(), 0xBAD);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.workers = 2;
    opts.server_queue_limit = Some(8);
    opts.budget = ResourceBudget {
        max_export_slots: Some(64),
        max_dirty_entries: Some(128),
        max_inflight: Some(4),
        max_queue_share: Some(2),
        max_connections: Some(2),
    };
    opts.retry = RetryPolicy {
        max_attempts: 30,
        base_delay: Duration::from_millis(5),
        max_delay: Duration::from_millis(50),
        attempt_timeout: None,
    };
    let owner = space_on(&net, "owner", opts.clone());
    let imp = CounterImpl::slow(Duration::from_millis(2), clock.clone());
    owner
        .export(Arc::new(CounterExport(Arc::clone(&imp))))
        .unwrap();

    // The abuser: one spoofable identity, two connections at its cap,
    // six threads hammering the idempotent method as fast as replies
    // come back. Errors are expected and ignored — that is the point.
    let abusive_id = SpaceId::from_raw(0xBAD_C0DE);
    let target = WireRep::new(owner.id(), ObjIx::FIRST_USER);
    let abusive_conns: Vec<Arc<netobj_rpc::CallClient>> = (0..2)
        .map(|_| {
            let conn = net.connect(&Endpoint::sim("owner")).unwrap();
            netobj_rpc::CallClient::with_clock(Arc::from(conn), abusive_id, clock.clone())
        })
        .collect();
    let abusive_errors = Arc::new(AtomicU64::new(0));
    let abusive_threads: Vec<_> = (0..6)
        .map(|t| {
            let cc = Arc::clone(&abusive_conns[t % 2]);
            let errs = Arc::clone(&abusive_errors);
            std::thread::spawn(move || {
                for _ in 0..30 {
                    let args = ().to_pickle_bytes();
                    if cc
                        .call_raw(target, 1, args, Duration::from_secs(2))
                        .is_err()
                    {
                        errs.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        })
        .collect();

    // Three honest clients, each doing a modest sequential workload with
    // ordinary retry settings, concurrently with the flood.
    let honest_threads: Vec<_> = (0..3)
        .map(|i| {
            let net = Arc::clone(&net);
            let opts = opts.clone();
            std::thread::spawn(move || {
                let space = space_on(&net, &format!("honest{i}"), opts);
                let c = import_counter(&space, "owner");
                let mut ok = 0u64;
                for _ in 0..40 {
                    if c.read().is_ok() {
                        ok += 1;
                    }
                }
                (space, c, ok)
            })
        })
        .collect();

    let honest: Vec<(Space, CounterClient, u64)> = honest_threads
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();
    for t in abusive_threads {
        t.join().unwrap();
    }

    // Honest service level: ≥99% of the 120 honest calls succeeded.
    let ok: u64 = honest.iter().map(|(_, _, ok)| ok).sum();
    assert!(
        ok * 100 >= 120 * 99,
        "honest success {ok}/120 fell below 99% under abuse"
    );
    // Bounded honest latency, measured in simulated time: merge every
    // honest space's client-side call histogram and check the p99.
    let mut merged = netobj::HistogramSnapshot::default();
    for (space, _, _) in &honest {
        for h in space.metrics().app_calls.values() {
            merged.merge(h);
        }
    }
    let p99 = merged.quantile_micros(0.99);
    assert!(
        p99 < 2_000_000,
        "honest p99 {p99}µs exceeds the 2s bound under abuse"
    );

    // A third connection is over the abuser's connection allowance: its
    // first decoded request draws the non-retryable quota error.
    let extra = net.connect(&Endpoint::sim("owner")).unwrap();
    let extra = netobj_rpc::CallClient::with_clock(Arc::from(extra), abusive_id, clock.clone());
    let refused = extra.call_raw(target, 1, ().to_pickle_bytes(), Duration::from_secs(2));
    assert!(refused.is_err(), "third connection must be refused");
    extra.close();

    // The abuser was visibly shed: over-quota rejections counted at the
    // server (the connection refusal above guarantees at least one; the
    // flood itself adds more), and its calls failed where honest ones
    // did not.
    assert!(
        owner.stats().calls_shed_quota > 0,
        "the abuse must trip the per-client quota: {:?}",
        owner.stats()
    );
    assert!(abusive_errors.load(Ordering::Relaxed) > 0);
    // The queue high-water mark recorded how deep the backlog got.
    let gauges = owner.metrics().gauges;
    assert!(
        gauges.server_queue_high_water > 0,
        "nine concurrent callers on two workers must have queued: {gauges:?}"
    );
    assert_eq!(gauges.server_queue_depth, 0, "drained after the joins");

    // Per-client quota gauges are live in the Prometheus text while the
    // honest surrogates (and their export-slot footprints) exist.
    let text = owner.metrics_text();
    assert!(
        text.contains("netobj_client_export_slots"),
        "per-client gauges missing from metrics text:\n{text}"
    );
    assert!(text.contains("netobj_client_shed_total"));
    for (space, _, _) in &honest {
        assert!(
            text.contains(&format!("{}", space.id())),
            "honest client {} missing from per-client gauges",
            space.id()
        );
    }

    for cc in &abusive_conns {
        cc.close();
    }

    // Honest collector traffic stays conformant through all of it.
    let mut drop_us = honest;
    let spaces: Vec<Space> = drop_us
        .drain(..)
        .map(|(space, c, _)| {
            drop(c);
            space
        })
        .collect();
    for s in &spaces {
        wait_until(&clock, "honest imports drained", || s.imported_count() == 0);
    }
    let mut participants: Vec<&Space> = vec![&owner];
    participants.extend(spaces.iter());
    assert_conformant("abusive_client", &participants);
    assert_sim_time_under(&clock, Duration::from_secs(120), "abusive_client");
}

/// Scenario 9: a dirty flood. An abusive peer walks the owner's export
/// table registering references it never intends to use — the classic
/// way to pin another process's memory via the collector. The export-slot
/// budget caps how much of the table one identity can hold; refusals are
/// non-retryable, counted, and visible per client, and honest clients
/// with their own budgets are unaffected.
#[test]
fn dirty_flood_is_bounded_by_export_slot_quota() {
    use netobj::dgc::methods;
    use netobj::transport::Transport;
    use netobj::wire::{Pickle, SpaceId, WireRep};

    let net = SimNet::virtual_time(LinkConfig::instant(), 0xF100D);
    let clock = net.clock();
    let mut opts = Options::fast();
    opts.budget = ResourceBudget {
        max_export_slots: Some(4),
        max_dirty_entries: Some(16),
        max_inflight: Some(64),
        max_queue_share: Some(32),
        max_connections: Some(8),
    };
    let owner = space_on(&net, "owner", opts.clone());
    // A dozen exported objects for the abuser to walk.
    for _ in 0..12 {
        owner
            .export(Arc::new(CounterExport(CounterImpl::new())))
            .unwrap();
    }

    let abusive_id = SpaceId::from_raw(0xF100D);
    let conn = net.connect(&Endpoint::sim("owner")).unwrap();
    let raw = netobj_rpc::CallClient::with_clock(Arc::from(conn), abusive_id, clock.clone());
    let gc = WireRep::gc_service(owner.id());
    let mut applied = 0u64;
    let mut refused = 0u64;
    for i in 0..12u64 {
        let args = (ObjIx::FIRST_USER.0 + i, 1u64, None::<Endpoint>).to_pickle_bytes();
        match raw.call(gc, methods::DIRTY, args) {
            Ok(_) => applied += 1,
            Err(_) => refused += 1,
        }
    }
    assert_eq!(
        (applied, refused),
        (4, 8),
        "exactly the slot budget registers; the rest are refused"
    );
    assert_eq!(owner.stats().dirty_refused_quota, 8);

    // The abuser's footprint is capped and visible in the gauges.
    let metrics = owner.metrics();
    let hogged = metrics
        .per_client
        .get(&format!("{abusive_id}"))
        .expect("abusive client must appear in per-client gauges");
    assert_eq!(hogged.export_slots, 4);
    // Each registration is a dirty entry plus its sequence-number floor.
    assert_eq!(hogged.dirty_entries, 8);
    assert!(owner.metrics_text().contains(&format!(
        "netobj_client_export_slots{{client=\"{abusive_id}\"}} 4"
    )));

    // Honest clients are not collateral damage: a fresh space imports and
    // uses an object the abuser failed to pin.
    let honest = space_on(&net, "honest", opts);
    let c = CounterClient::narrow(
        honest
            .import_root(&Endpoint::sim("owner"), ObjIx(ObjIx::FIRST_USER.0 + 11))
            .unwrap(),
    )
    .unwrap();
    assert_eq!(c.add(7).unwrap(), 7);

    // The abuser releases what it did pin (strong cleans above its dirty
    // seqnos). The registrations go, but the sequence-number floors the
    // cleans leave behind remain counted against the client — floors are
    // the memory a peer grows "for free", so they stay on the books until
    // the objects themselves are collected.
    for i in 0..4u64 {
        let args = (ObjIx::FIRST_USER.0 + i, 2u64, true).to_pickle_bytes();
        raw.call(gc, methods::CLEAN, args).unwrap();
    }
    raw.close();
    let after_clean = owner.metrics();
    let lingering = after_clean
        .per_client
        .get(&format!("{abusive_id}"))
        .expect("floors keep the client on the books");
    assert_eq!(lingering.export_slots, 0, "no live registrations remain");
    assert_eq!(lingering.dirty_entries, 4, "four clean floors linger");
    // (The floors drain — and the record disappears — only when the
    // objects themselves are collected; exported roots stay pinned, so
    // that path is exercised by the table unit tests instead.)

    drop(c);
    wait_until(&clock, "honest import drained", || {
        honest.imported_count() == 0
    });

    assert_conformant("dirty_flood", &[&owner, &honest]);
    assert_sim_time_under(&clock, Duration::from_secs(120), "dirty_flood");
}
