//! Connection-churn regression test for the reactor core.
//!
//! Opens and closes a few thousand TCP connections against a reactor-backed
//! server — each presenting a caller identity from a small rotating set and
//! issuing one call — then asserts every per-connection resource is
//! reclaimed: no leaked file descriptors, no stale per-client footprint in
//! the admission-control table, the reactor's connection gauge back at zero,
//! and the worker queue exactly empty.
//!
//! The reactor path only exists on unix; elsewhere this file is empty.
#![cfg(unix)]

use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj_rpc::msg::{Request, RpcMsg};
use netobj_rpc::{Dispatch, Dispatcher, ResourceBudget, RpcServer, ServerConfig};
use netobj_transport::tcp::Tcp;
use netobj_transport::{Bytes, Endpoint, Transport};
use netobj_wire::{ObjIx, SpaceId, WireRep};

const CYCLES: usize = 3000;
const IDENTITIES: usize = 32;

struct Echo;

impl Dispatcher for Echo {
    fn dispatch(&self, _caller: SpaceId, _target: WireRep, _method: u32, args: &[u8]) -> Dispatch {
        Dispatch::plain(Ok(args.to_vec()))
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .map(|d| d.count())
        .unwrap_or(0)
}

#[test]
fn churned_connections_leave_no_residue() {
    let listener = Tcp.listen(&Endpoint::tcp("127.0.0.1:0")).expect("listen");
    let addr = listener.local_endpoint();
    // A finite budget makes the pool track a footprint per caller identity,
    // so this test also covers footprint teardown on disconnect.
    let server = RpcServer::start_with_config(
        listener,
        Arc::new(Echo),
        ServerConfig {
            workers: 2,
            budget: ResourceBudget {
                max_connections: Some(4),
                ..ResourceBudget::unlimited()
            },
            ..ServerConfig::default()
        },
    );
    assert!(
        server.reactor_stats().is_some(),
        "TCP server on a system clock must run on the reactor"
    );

    let identities: Vec<SpaceId> = (0..IDENTITIES).map(|_| SpaceId::fresh()).collect();
    let fds_before = open_fds();

    for i in 0..CYCLES {
        let conn = Tcp.connect(&addr).expect("connect");
        let caller = identities[i % IDENTITIES];
        let req = RpcMsg::Request(Request {
            call_id: 1,
            caller,
            target: WireRep::new(caller, ObjIx::FIRST_USER),
            method: 3,
            args: Bytes::copy_from_slice(b"churn"),
            trace_id: 0,
            span_id: 0,
        });
        conn.send(req.encode()).expect("send");
        let frame = conn
            .recv_timeout(Duration::from_secs(10))
            .expect("reply before timeout");
        match RpcMsg::decode(&frame).expect("decodable reply") {
            RpcMsg::Reply(r) => {
                assert_eq!(r.call_id, 1);
                assert!(r.outcome.is_ok(), "cycle {i}: {:?}", r.outcome);
            }
            other => panic!("cycle {i}: unexpected message {other:?}"),
        }
        conn.close();
    }

    // Every close must eventually be observed by the reactor, releasing the
    // fd, the connection gauge, and the caller's admission footprint.
    wait_until("reactor connection gauge to reach zero", || {
        server.reactor_stats().is_some_and(|s| s.connections == 0)
    });
    wait_until("per-client footprints to drain", || {
        server.per_client().is_empty()
    });
    assert_eq!(server.queue_depth(), 0, "worker queue must drain exactly");

    let stats = server.reactor_stats().expect("reactor stats");
    assert_eq!(stats.accepted, CYCLES as u64, "every connect was accepted");

    // fd census: allow a little slack for the harness (epoll, timerfd,
    // whatever the runtime holds), but a per-connection leak of even a few
    // percent of CYCLES would blow far past it.
    let fds_after = open_fds();
    assert!(
        fds_after <= fds_before + 16,
        "fd leak: {fds_before} before churn, {fds_after} after"
    );
}
