//! Integration tests for the observability layer: causal span
//! propagation across a three-space call chain on virtual time,
//! deterministic metrics exposition, and end-to-end acceptance of the
//! pre-span request format (mixed-version interop).

#[path = "vt_util.rs"]
mod vt_util;

use std::sync::Arc;
use std::time::Duration;

use netobj::transport::loopback::Loopback;
use netobj::transport::sim::{LinkConfig, SimNet};
use netobj::transport::{Endpoint, Transport};
use netobj::wire::pickle::{Pickle, PickleReader, PickleWriter};
use netobj::wire::{ObjIx, SpaceId, SpanKind, SpanRecord, WireRep};
use netobj::{network_object, NetResult, Options, Space};
use vt_util::{assert_sim_time_under, space_on};

network_object! {
    /// The backing store at the end of the chain.
    pub interface Store ("obs.Store"): client StoreClient, export StoreExport {
        0 [idempotent] => fn get(&self, key: String) -> String;
    }
}

network_object! {
    /// The middle tier: serves lookups by consulting the store.
    pub interface Cache ("obs.Cache"): client CacheClient, export CacheExport {
        0 [idempotent] => fn lookup(&self, key: String) -> String;
    }
}

struct StoreImpl;

impl Store for StoreImpl {
    fn get(&self, key: String) -> NetResult<String> {
        Ok(format!("value-of-{key}"))
    }
}

struct CacheImpl {
    store: StoreClient,
}

impl Cache for CacheImpl {
    fn lookup(&self, key: String) -> NetResult<String> {
        self.store.get(key)
    }
}

/// Builds the frontend → middle → backend chain on `net` and performs one
/// lookup; returns the three spaces in that order plus the live client
/// stub (dropping it would kick off an asynchronous clean call, which
/// must not race with metrics snapshots).
fn chained_lookup(net: &Arc<SimNet>) -> (Space, Space, Space, CacheClient) {
    let opts = Options::fast();
    let backend = space_on(net, "backend", opts.clone());
    backend
        .export(Arc::new(StoreExport(Arc::new(StoreImpl))))
        .unwrap();
    let middle = space_on(net, "middle", opts.clone());
    let store = StoreClient::narrow(
        middle
            .import_root(&Endpoint::sim("backend"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    middle
        .export(Arc::new(CacheExport(Arc::new(CacheImpl { store }))))
        .unwrap();
    let frontend = space_on(net, "frontend", opts);
    let cache = CacheClient::narrow(
        frontend
            .import_root(&Endpoint::sim("middle"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    assert_eq!(cache.lookup("k".into()).unwrap(), "value-of-k");
    (frontend, middle, backend, cache)
}

fn spans_of_trace(space: &Space, trace_id: u64) -> Vec<SpanRecord> {
    space
        .spans()
        .into_iter()
        .filter(|s| s.trace_id == trace_id)
        .collect()
}

/// Acceptance criterion: a chained call through 3 spaces on SimNet
/// virtual time yields span records in all three rings sharing one trace
/// id, with server `queue_wait + service` ≤ the client-observed duration
/// for every hop.
#[test]
fn chained_spans_share_one_trace_and_nest_within_client_durations() {
    let net = SimNet::virtual_time(LinkConfig::with_latency(Duration::from_millis(2)), 11);
    let clock = net.clock();
    let (frontend, middle, backend, _cache) = chained_lookup(&net);

    let root = frontend
        .spans()
        .into_iter()
        .find(|s| s.label == "obs.Cache/lookup")
        .expect("frontend recorded the root client span");
    assert_ne!(root.trace_id, 0);
    assert_eq!(root.kind, SpanKind::Client);
    assert_eq!(root.parent_span, 0, "the root has no causal parent");

    // Hop 1: frontend (client) → middle (server).
    let middle_spans = spans_of_trace(&middle, root.trace_id);
    let hop1_server = middle_spans
        .iter()
        .find(|s| s.kind == SpanKind::Server && s.parent_span == root.span_id)
        .expect("middle recorded a server span parented on the root");
    assert_eq!(
        hop1_server.duration_micros,
        hop1_server.queue_wait_micros + hop1_server.service_micros
    );
    assert!(
        hop1_server.queue_wait_micros + hop1_server.service_micros <= root.duration_micros,
        "server time {} + {} must nest inside the client-observed {} µs",
        hop1_server.queue_wait_micros,
        hop1_server.service_micros,
        root.duration_micros
    );

    // Hop 2: middle (client, issued during hop 1's dispatch) → backend.
    let hop2_client = middle_spans
        .iter()
        .find(|s| s.kind == SpanKind::Client && s.label == "obs.Store/get")
        .expect("middle recorded the nested client span");
    assert_eq!(
        hop2_client.parent_span, hop1_server.span_id,
        "a client span issued during a dispatch is parented on the enclosing server span"
    );
    let backend_spans = spans_of_trace(&backend, root.trace_id);
    let hop2_server = backend_spans
        .iter()
        .find(|s| s.kind == SpanKind::Server && s.parent_span == hop2_client.span_id)
        .expect("backend recorded a server span parented on the nested client span");
    assert!(
        hop2_server.queue_wait_micros + hop2_server.service_micros <= hop2_client.duration_micros
    );
    // The nested call happened inside hop 1's service time.
    assert!(hop2_client.duration_micros <= root.duration_micros);

    // All three rings hold spans of the one trace, and nothing leaked a
    // different trace id into this chain.
    for (name, space) in [
        ("frontend", &frontend),
        ("middle", &middle),
        ("backend", &backend),
    ] {
        assert!(
            !spans_of_trace(space, root.trace_id).is_empty(),
            "{name} has no span for the trace"
        );
    }

    assert_sim_time_under(&clock, Duration::from_secs(120), "chained_spans");
}

/// Strips the sample values from Prometheus text, keeping the metric
/// names, labels and comment lines — the exposition *structure*.
fn structure_of(text: &str) -> Vec<String> {
    text.lines()
        .map(|l| {
            if l.starts_with('#') {
                l.to_owned()
            } else {
                l.rsplit_once(' ')
                    .map(|(k, _)| k.to_owned())
                    .unwrap_or_default()
            }
        })
        .collect()
}

/// Acceptance criterion: `metrics_text()` is deterministic under virtual
/// time — two identically-seeded runs produce the same exposition
/// structure — and includes every `Stats` counter plus per-method
/// latency histograms.
#[test]
fn metrics_text_is_deterministic_and_complete() {
    let run = || {
        let net = SimNet::virtual_time(LinkConfig::instant(), 23);
        let (frontend, middle, backend, _cache) = chained_lookup(&net);
        (
            frontend.metrics_text(),
            middle.metrics_text(),
            backend.metrics_text(),
        )
    };
    let (f1, m1, b1) = run();
    let (f2, m2, b2) = run();
    assert_eq!(structure_of(&f1), structure_of(&f2));
    assert_eq!(structure_of(&m1), structure_of(&m2));
    assert_eq!(structure_of(&b1), structure_of(&b2));

    // Every counter the stats registry knows must be in the text.
    let net = SimNet::virtual_time(LinkConfig::instant(), 23);
    let (frontend, middle, _backend, _cache) = chained_lookup(&net);
    let text = frontend.metrics_text();
    for (name, _) in frontend.stats().named() {
        assert!(
            text.contains(&format!("netobj_{name} ")),
            "metrics text is missing counter {name}"
        );
    }
    // Per-method histograms: the caller's view on the frontend, both the
    // caller's and the dispatch-side view on the middle tier.
    assert!(text.contains("netobj_call_latency_micros_count{method=\"obs.Cache/lookup\"}"));
    let middle_text = middle.metrics_text();
    assert!(middle_text.contains("netobj_call_latency_micros_count{method=\"obs.Store/get\"}"));
    assert!(middle_text.contains("netobj_call_latency_micros_count{method=\"serve/m0\"}"));
}

/// Acceptance criterion (mixed-version interop): a request hand-encoded
/// in the original 5-field format — exactly what a peer predating the
/// span header sends — is served end to end, and the server still
/// records a span for it, with a freshly allocated trace id.
#[test]
fn old_format_request_is_served_end_to_end() {
    let net = Loopback::new();
    let owner = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::loopback("owner"))
        .build()
        .unwrap();
    owner
        .export(Arc::new(StoreExport(Arc::new(StoreImpl))))
        .unwrap();

    // Pose as an old peer: raw connection, 5-field request, no span ids.
    let conn = net.connect(&Endpoint::loopback("owner")).unwrap();
    let mut w = PickleWriter::new();
    w.begin_variant(0); // request tag
    w.begin_record(5); // pre-span arity
    9u64.pickle(&mut w); // call_id
    SpaceId::fresh().pickle(&mut w); // caller
    WireRep::new(owner.id(), ObjIx::FIRST_USER).pickle(&mut w); // target
    0u32.pickle(&mut w); // method: Store::get
    let mut args = PickleWriter::new();
    "k".to_owned().pickle(&mut args);
    w.put_bytes(args.as_bytes());
    conn.send(netobj::transport::Bytes::from(w.as_bytes().to_vec()))
        .unwrap();

    let reply = conn.recv_timeout(Duration::from_secs(10)).unwrap();
    let mut r = PickleReader::new(&reply);
    assert_eq!(r.begin_variant().unwrap(), 1, "expected an ok reply");
    assert_eq!(u64::unpickle(&mut r).unwrap(), 9, "call_id must match");
    let _needs_ack = bool::unpickle(&mut r).unwrap();
    let result = r.get_bytes().unwrap().to_vec();
    let mut rr = PickleReader::new(&result);
    assert_eq!(String::unpickle(&mut rr).unwrap(), "value-of-k");

    // The server recorded the call with a locally allocated trace id.
    let span = owner
        .spans()
        .into_iter()
        .find(|s| s.kind == SpanKind::Server && s.method == 0)
        .expect("server span for the old-format call");
    assert_ne!(
        span.trace_id, 0,
        "server allocates a trace id for old peers"
    );
    assert_eq!(span.parent_span, 0);
    assert_eq!(owner.stats().calls_served, 1);
    assert_eq!(owner.stats().calls_rejected, 0);
}
