//! Cross-crate integration: agent bootstrap, TCP transport, third-party
//! transfer, collection — the full system assembled the way a deployment
//! would assemble it.

use std::sync::Arc;
use std::time::{Duration, Instant};

use netobj::transport::sim::SimNet;
use netobj::transport::tcp::Tcp;
use netobj::transport::Endpoint;
use netobj::wire::ObjIx;
use netobj::{network_object, NetResult, Options, Space};
use netobj_agent::Agent;
use parking_lot::Mutex;

network_object! {
    /// Shared store interface for the integration scenarios.
    pub interface Store ("it.Store"): client StoreClient, export StoreExport {
        0 => fn put(&self, k: String, v: i64) -> ();
        1 => fn get(&self, k: String) -> Option<i64>;
    }
}

network_object! {
    /// A factory handing out fresh stores (references as results).
    pub interface Factory ("it.Factory"): client FactoryClient, export FactoryExport {
        0 => fn make(&self) -> StoreClient;
    }
}

network_object! {
    /// Relay used to hand a store reference between client spaces
    /// (references as arguments; enables third-party transfer).
    pub interface Relay ("it.Relay"): client RelayClient, export RelayExport {
        0 => fn offer(&self, s: StoreClient) -> ();
        1 => fn take(&self) -> Option<StoreClient>;
    }
}

struct StoreImpl {
    data: Mutex<std::collections::HashMap<String, i64>>,
}

impl Store for StoreImpl {
    fn put(&self, k: String, v: i64) -> NetResult<()> {
        self.data.lock().insert(k, v);
        Ok(())
    }
    fn get(&self, k: String) -> NetResult<Option<i64>> {
        Ok(self.data.lock().get(&k).copied())
    }
}

struct FactoryImpl {
    space: Space,
}

impl Factory for FactoryImpl {
    fn make(&self) -> NetResult<StoreClient> {
        let store = Arc::new(StoreExport(Arc::new(StoreImpl {
            data: Mutex::new(Default::default()),
        })));
        StoreClient::narrow(self.space.local(store))
    }
}

struct RelayImpl(Mutex<Option<StoreClient>>);

impl Relay for RelayImpl {
    fn offer(&self, s: StoreClient) -> NetResult<()> {
        *self.0.lock() = Some(s);
        Ok(())
    }
    fn take(&self) -> NetResult<Option<StoreClient>> {
        Ok(self.0.lock().take())
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out: {what}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn full_stack_over_tcp_with_agent() {
    // Agent host (netobjd).
    let host = Space::builder()
        .transport(Arc::new(Tcp))
        .listen(Endpoint::tcp("127.0.0.1:0"))
        .options(Options::fast())
        .build()
        .unwrap();
    netobj_agent::serve(&host).unwrap();
    let agent_ep = host.endpoint().unwrap();

    // A server space binds a store under a name.
    let server = Space::builder()
        .transport(Arc::new(Tcp))
        .listen(Endpoint::tcp("127.0.0.1:0"))
        .options(Options::fast())
        .build()
        .unwrap();
    let store_obj = Arc::new(StoreExport(Arc::new(StoreImpl {
        data: Mutex::new(Default::default()),
    })));
    let agent = netobj_agent::connect(&server, &agent_ep).unwrap();
    agent.put("store".into(), server.local(store_obj)).unwrap();

    // Two independent client spaces find it and interleave operations.
    let mut joins = Vec::new();
    for who in ["a", "b"] {
        let agent_ep = agent_ep.clone();
        joins.push(std::thread::spawn(move || {
            let space = Space::builder()
                .transport(Arc::new(Tcp))
                .listen(Endpoint::tcp("127.0.0.1:0"))
                .options(Options::fast())
                .build()
                .unwrap();
            let agent = netobj_agent::connect(&space, &agent_ep).unwrap();
            let store =
                StoreClient::narrow(agent.get("store".into()).unwrap().expect("bound")).unwrap();
            for i in 0..20 {
                store.put(format!("{who}-{i}"), i).unwrap();
            }
            for i in 0..20 {
                assert_eq!(store.get(format!("{who}-{i}")).unwrap(), Some(i));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // The agent's handle keeps the store's table entry alive even after
    // both client spaces have gone.
    assert!(server.exported_count() >= 1);
}

#[test]
fn three_space_triangle_over_sim() {
    let net = SimNet::instant();
    let mk = |name: &str| {
        Space::builder()
            .transport(Arc::new(Arc::clone(&net)))
            .listen(Endpoint::sim(name))
            .options(Options::fast())
            .build()
            .unwrap()
    };

    // The owner exports a pinned factory; stores it makes are unpinned
    // and live in the table only while remotely referenced.
    let owner = mk("owner");
    owner
        .export(Arc::new(FactoryExport(Arc::new(FactoryImpl {
            space: owner.clone(),
        }))))
        .unwrap();
    // Bob exports a pinned relay.
    let bob = mk("bob");
    bob.export(Arc::new(RelayExport(Arc::new(RelayImpl(Mutex::new(None))))))
        .unwrap();

    // Alice obtains a fresh store from the owner (reference as result).
    let alice = mk("alice");
    let factory = FactoryClient::narrow(
        alice
            .import_root(&Endpoint::sim("owner"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let store = factory.make().unwrap();
    store.put("x".into(), 7).unwrap();
    assert_eq!(owner.exported_count(), 2, "factory + granted store");

    // Alice hands the store to Bob through Bob's relay: sender alice,
    // receiver bob, owner owner — the full triangle.
    let relay = RelayClient::narrow(
        alice
            .import_root(&Endpoint::sim("bob"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    relay.offer(store.clone()).unwrap();

    // Bob takes it (locally) and talks to the owner directly.
    let relay_at_bob = RelayClient::narrow(
        bob.import_root(&Endpoint::sim("bob"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    let store_at_bob = relay_at_bob.take().unwrap().expect("offered");
    assert!(!store_at_bob.handle().is_local());
    assert_eq!(store_at_bob.get("x".into()).unwrap(), Some(7));
    store_at_bob.put("y".into(), 9).unwrap();
    assert_eq!(store.get("y".into()).unwrap(), Some(9));

    // Alice drops her copy: Bob's must survive.
    drop(store);
    wait_until("alice's clean arrives", || {
        owner.stats().clean_received >= 1
    });
    assert_eq!(store_at_bob.get("x".into()).unwrap(), Some(7));
    assert_eq!(owner.exported_count(), 2, "store survives for bob");

    // Bob drops too: the store's entry must leave the owner's table.
    drop(store_at_bob);
    wait_until("store collected at owner", || owner.exported_count() == 1);
}

#[test]
fn stats_are_consistent_across_spaces() {
    let net = SimNet::instant();
    let server = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("server"))
        .options(Options::fast())
        .build()
        .unwrap();
    server
        .export(Arc::new(StoreExport(Arc::new(StoreImpl {
            data: Mutex::new(Default::default()),
        }))))
        .unwrap();

    let client = Space::builder()
        .transport(Arc::new(Arc::clone(&net)))
        .listen(Endpoint::sim("client"))
        .options(Options::fast())
        .build()
        .unwrap();
    let s = StoreClient::narrow(
        client
            .import_root(&Endpoint::sim("server"), ObjIx::FIRST_USER)
            .unwrap(),
    )
    .unwrap();
    for i in 0..50 {
        s.put(format!("k{i}"), i).unwrap();
    }
    drop(s);
    wait_until("clean exchanged", || {
        client.stats().clean_sent == 1 && server.stats().clean_received == 1
    });
    let cs = client.stats();
    let ss = server.stats();
    assert_eq!(cs.dirty_sent, ss.dirty_received);
    assert_eq!(cs.clean_sent, ss.clean_received);
    assert!(cs.calls_sent >= 50, "at least the 50 puts");
    assert_eq!(cs.surrogates_created, 1);
}
